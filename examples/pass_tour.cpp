// Compiler-pass tour: the paper's Figure 3 -> Figure 13 walkthrough on a
// function shaped after Radiosity's intersection_type example.
//
// Prints the per-block clock assignment after each stage:
//   baseline insertion -> Opt1 (function clocking) -> Opt2 (conditional
//   blocks) -> Opt3 (averaging) -> Opt4 (loops) -> fully optimized IR.
//
// Build & run:  ./build/examples/pass_tour
#include <cstdio>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "pass/conservation.hpp"
#include "pass/pipeline.hpp"

namespace {

using namespace detlock;

// A caller with a hot loop whose body calls a balanced leaf (Opt1 fodder),
// runs an if/else diamond (Opt2a), a short-circuit pattern (Opt2b), and a
// light latch (Opt4); the leaf itself is diamond-heavy (Opt3 / Opt1 paths).
const char* kExample = R"(
func @intersection_type(2) {
block entry:
  %2 = mul %0, %1
  %3 = add %2, %0
  %4 = icmp lt %3, %1
  condbr %4, if.then.i, if.else.i
block if.then.i:
  %5 = add %3, %0
  %6 = mul %5, %1
  br merge.i
block if.else.i:
  %7 = sub %3, %0
  %8 = mul %7, %1
  br merge.i
block merge.i:
  %9 = and %6, %8
  ret %9
}

func @example(2) regs=32 {
block entry:
  %2 = const 0
  %3 = const 0
  br for.cond
block for.cond:
  %4 = const 40
  %5 = load %4
  %6 = icmp lt %3, %5
  condbr %6, if.end21, for.end
block if.end21:
  %7 = call @intersection_type(%3, %0)
  %8 = icmp gt %7, %1
  condbr %8, lor.lhs.false23, if.then28
block lor.lhs.false23:
  %9 = mul %7, %7
  %10 = add %9, %0
  %11 = mul %10, %7
  %12 = add %11, %1
  %13 = mul %12, %12
  %14 = add %13, %7
  %15 = icmp lt %14, %0
  condbr %15, if.then28, for.inc
block if.then28:
  %16 = add %2, %7
  %2 = and %16, %1
  br for.inc
block for.inc:
  %17 = const 1
  %3 = add %3, %17
  br for.cond
block for.end:
  ret %2
}

func @main(2) {
block entry:
  %2 = call @example(%0, %1)
  ret %2
}
)";

void print_assignment(const char* title, const ir::Module& module, const pass::ClockAssignment& assignment) {
  std::printf("--- %s\n", title);
  for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
    const ir::Function& func = module.functions()[f];
    if (assignment.is_clocked(f)) {
      std::printf("  @%s: CLOCKED, mean path cost %lld charged at call sites\n", func.name().c_str(),
                  static_cast<long long>(assignment.clocked_functions.at(f)));
      continue;
    }
    std::printf("  @%s:\n", func.name().c_str());
    for (ir::BlockId b = 0; b < func.num_blocks(); ++b) {
      const pass::BlockClockInfo& info = assignment.funcs[f][b];
      std::printf("    %-22s clock = %-4lld (exact cost %lld)%s\n", func.block(b).name().c_str(),
                  static_cast<long long>(info.clock), static_cast<long long>(info.original_cost),
                  info.movable() ? "" : "  [pinned]");
    }
    const pass::DivergenceReport div = pass::sample_clock_divergence(module, assignment, f, 64, 512, 3);
    std::printf("    (sampled divergence: max %.1f%%, sites %zu)\n", div.max_relative * 100.0,
                assignment.funcs[f].nonzero_sites());
  }
  std::printf("\n");
}

void stage(const char* title, const pass::PassOptions& options) {
  ir::Module module = ir::parse_module(kExample);
  pass::ClockAssignment assignment;
  pass::compute_assignment(module, options, assignment);
  print_assignment(title, module, assignment);
}

}  // namespace

int main() {
  std::printf("DetLock pass tour (cf. paper Figs. 3-13)\n");
  std::printf("Cost model: 1/instruction; loads 3, stores 2, calls 2, divides 20.\n\n");

  stage("Baseline insertion (one update per block)", pass::PassOptions::none());
  stage("Opt1: Function Clocking", pass::PassOptions::only_opt1());
  stage("Opt2: Conditional Blocks (a: precise rearrangement, b: short-circuit)",
        pass::PassOptions::only_opt2());
  stage("Opt3: Averaging of Clocks", pass::PassOptions::only_opt3());
  stage("Opt4: Loops (latch folded into header)", pass::PassOptions::only_opt4());
  stage("All optimizations", pass::PassOptions::all());

  // Final instrumented IR, as the backend would receive it.
  ir::Module module = ir::parse_module(kExample);
  pass::instrument_module(module, pass::PassOptions::all());
  std::printf("--- Fully instrumented IR (all optimizations, start-of-block placement)\n%s",
              ir::to_string(module, module.function(module.find_function("example"))).c_str());
  return 0;
}
