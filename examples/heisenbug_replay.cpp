// The motivating use-case (paper Sec. I): reproducible debugging.
//
// A work-stealing pipeline has an order-dependent bug: the aggregation
// applies a non-commutative fold (shift-xor), so the final digest depends
// on which worker merged first.  Under plain locks every run may disagree;
// under DetLock the digest -- bug included -- is identical on every run, so
// a debugger can chase it reliably.  The example also runs the built-in
// lockset race detector to show the program is race-FREE (the
// nondeterminism is pure lock-ordering, exactly the class weak determinism
// pins down).
//
// Build & run:  ./build/examples/heisenbug_replay
#include <cstdio>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "pass/pipeline.hpp"
#include "racedetect/lockset.hpp"

namespace {

const char* kPipeline = R"(
func @worker(1) regs=24 {
block entry:
  %20 = const 0
  %21 = const 1
  %1 = const 0
  %2 = const 12
  br grab.cond
block grab.cond:
  %3 = icmp lt %1, %2
  condbr %3, grab, done
block grab:
  lock %20
  %4 = const 64
  %5 = load %4
  %7 = add %5, %21
  store %4, %7
  unlock %20
  %8 = mul %5, %0
  %9 = add %8, %5
  %10 = mul %9, %9
  %11 = and %10, %9
  lock %21
  %12 = const 65
  %13 = load %12
  %14 = const 5
  %15 = shl %13, %14
  %16 = xor %15, %8
  store %12, %16
  unlock %21
  %1 = add %1, %21
  br grab.cond
block done:
  ret
}

func @main(0) {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = spawn @worker(%2)
  %4 = const 3
  %5 = spawn @worker(%4)
  %6 = const 4
  %7 = call @worker(%6)
  join %1
  join %3
  join %5
  %8 = const 65
  %9 = load %8
  ret %9
}
)";

std::int64_t run_digest(bool deterministic, detlock::racedetect::LocksetRaceDetector* detector = nullptr) {
  using namespace detlock;
  ir::Module module = ir::parse_module(kPipeline);
  pass::instrument_module(module, pass::PassOptions::all());
  interp::EngineConfig config;
  config.deterministic = deterministic;
  config.observer = detector;
  interp::Engine engine(module, config);
  return engine.run("main").main_return;
}

}  // namespace

int main() {
  std::printf("Order-dependent digest (non-commutative fold under two locks)\n\n");

  std::printf("plain locks, 4 runs:   ");
  for (int i = 0; i < 4; ++i) std::printf("%016llx ", static_cast<unsigned long long>(run_digest(false)));
  std::printf("\n                       (may or may not agree -- the schedule decides)\n");

  std::printf("DetLock,     4 runs:   ");
  const std::int64_t first = run_digest(true);
  bool stable = true;
  std::printf("%016llx ", static_cast<unsigned long long>(first));
  for (int i = 0; i < 3; ++i) {
    const std::int64_t d = run_digest(true);
    std::printf("%016llx ", static_cast<unsigned long long>(d));
    stable = stable && d == first;
  }
  std::printf("\n                       (pinned: every run replays the same lock order)\n\n");

  detlock::racedetect::LocksetRaceDetector detector;
  run_digest(true, &detector);
  std::printf("lockset race detector: %s (%llu accesses checked)\n",
              detector.race_detected() ? "RACE FOUND" : "race-free",
              static_cast<unsigned long long>(detector.accesses_observed()));
  std::printf("=> the divergence above is pure lock-order nondeterminism: exactly what\n");
  std::printf("   weak determinism eliminates.\n");
  return stable && !detector.race_detected() ? 0 : 1;
}
