// Porting an existing pthreads program with the header-replacement shim.
//
// Paper Sec. III-B: "it is not necessary for the programmer to modify the
// code to use them.  A header file is provided by us that replaces the
// definition of these functions with ours."  The dining-philosophers code
// below is written against the plain pthread_* API; defining
// DETLOCK_SHIM_PTHREAD_NAMES before including the shim retargets every call
// at the deterministic runtime.  The only DetLock-specific lines are the
// runtime start/stop and the det_tick() calls standing in for the compiler-
// inserted clock updates.
//
// Build & run:  ./build/examples/pthread_port
#define DETLOCK_SHIM_PTHREAD_NAMES
#include "runtime/pthread_shim.hpp"

#include <cstdio>

namespace {

using detlock::runtime::shim::det_runtime_fingerprint;
using detlock::runtime::shim::det_runtime_start;
using detlock::runtime::shim::det_runtime_stop;
using detlock::runtime::shim::det_tick;

constexpr int kPhilosophers = 5;
constexpr int kMeals = 30;

pthread_mutex_t forks[kPhilosophers];
pthread_mutex_t log_mutex;
long eat_log[kPhilosophers * kMeals];  // who ate, in global meal order
long meals_served;

struct PhilosopherArg {
  int seat;
};

void* philosopher(void* raw) {
  const int seat = static_cast<PhilosopherArg*>(raw)->seat;
  const int left = seat;
  const int right = (seat + 1) % kPhilosophers;
  // Ordered acquisition (lower fork index first) prevents deadlock.
  const int first = left < right ? left : right;
  const int second = left < right ? right : left;

  for (int meal = 0; meal < kMeals; ++meal) {
    det_tick(120 + 17 * static_cast<std::uint64_t>(seat));  // "thinking"
    pthread_mutex_lock(&forks[first]);
    pthread_mutex_lock(&forks[second]);
    det_tick(60);  // "eating"
    pthread_mutex_lock(&log_mutex);
    eat_log[meals_served++] = seat;
    pthread_mutex_unlock(&log_mutex);
    pthread_mutex_unlock(&forks[second]);
    pthread_mutex_unlock(&forks[first]);
  }
  return nullptr;
}

std::uint64_t run_table() {
  det_runtime_start();
  for (auto& fork : forks) pthread_mutex_init(&fork, nullptr);
  pthread_mutex_init(&log_mutex, nullptr);
  meals_served = 0;

  pthread_t threads[kPhilosophers];
  PhilosopherArg args[kPhilosophers];
  // Philosopher 0 runs on the main thread (SPLASH-2 style); 1..4 spawned.
  for (int p = 1; p < kPhilosophers; ++p) {
    args[p].seat = p;
    pthread_create(&threads[p], nullptr, philosopher, &args[p]);
  }
  args[0].seat = 0;
  philosopher(&args[0]);
  for (int p = 1; p < kPhilosophers; ++p) pthread_join(threads[p], nullptr);

  // Fold the global meal order into a hash: the determinism witness.
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (long i = 0; i < meals_served; ++i) {
    digest = (digest ^ static_cast<std::uint64_t>(eat_log[i])) * 0x100000001b3ULL;
  }
  digest ^= det_runtime_fingerprint();
  det_runtime_stop();
  return digest;
}

}  // namespace

int main() {
  std::printf("Dining philosophers through the pthread shim (%d seats x %d meals)\n\n", kPhilosophers,
              kMeals);
  const std::uint64_t a = run_table();
  const std::uint64_t b = run_table();
  const std::uint64_t c = run_table();
  std::printf("meal-order digests: %016llx %016llx %016llx\n", static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b), static_cast<unsigned long long>(c));
  if (a == b && b == c) {
    std::printf("=> every table serves the meals in exactly the same global order.\n");
    return 0;
  }
  std::printf("=> ERROR: runs diverged\n");
  return 1;
}
