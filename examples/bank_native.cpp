// Native-code example: the paper's drop-in pthread replacement surface.
//
// A bank with 8 accounts and 4 teller threads moving money under per-
// account deterministic mutexes.  The transfer interleaving -- normally a
// free-for-all -- is pinned by DetLock's logical clocks, so the exact
// intermediate balance trajectory is reproducible run after run.  The
// rt.tick() calls stand in for the clock updates the LLVM pass would insert
// into compiled code (see src/pass for the compiler side).
//
// Build & run:  ./build/examples/bank_native
#include <cstdio>
#include <numeric>
#include <vector>

#include "runtime/native_api.hpp"

namespace {

using detlock::runtime::MutexId;
using detlock::runtime::NativeRuntime;
using detlock::runtime::ThreadId;

constexpr std::uint32_t kAccounts = 8;
constexpr std::uint32_t kTellers = 4;
constexpr std::uint32_t kTransfersPerTeller = 250;

struct RunOutcome {
  std::vector<std::int64_t> balances;
  std::uint64_t lock_order_hash = 0;
};

RunOutcome run_bank() {
  NativeRuntime rt;
  rt.attach_main();
  std::vector<std::int64_t> balances(kAccounts, 1000);

  std::vector<std::thread> threads;
  std::vector<ThreadId> ids;
  for (std::uint32_t teller = 0; teller < kTellers; ++teller) {
    ids.push_back(rt.peek_next_id());
    threads.push_back(rt.thread_create([&rt, &balances, teller] {
      std::uint64_t rng = teller * 0x9e3779b97f4a7c15ULL + 1;
      for (std::uint32_t i = 0; i < kTransfersPerTeller; ++i) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint32_t from = static_cast<std::uint32_t>(rng >> 33) % kAccounts;
        const std::uint32_t to = (from + 1 + teller) % kAccounts;
        const std::int64_t amount = 1 + static_cast<std::int64_t>((rng >> 20) % 20);

        // "Compiler-inserted" logical clock for the work since the last
        // synchronization point.
        rt.tick(150 + 13 * teller);

        // Two-lock transfer with ordered acquisition (deadlock-free, and
        // the deterministic runtime serializes acquires by logical time).
        const MutexId first = std::min(from, to);
        const MutexId second = std::max(from, to);
        rt.mutex_lock(first);
        rt.mutex_lock(second);
        if (balances[from] >= amount) {
          balances[from] -= amount;
          balances[to] += amount;
        }
        rt.mutex_unlock(second);
        rt.mutex_unlock(first);
      }
    }));
  }
  for (std::uint32_t t = 0; t < kTellers; ++t) rt.thread_join(threads[t], ids[t]);

  RunOutcome outcome;
  outcome.balances = balances;
  outcome.lock_order_hash = rt.trace_fingerprint();
  rt.detach_main();
  return outcome;
}

}  // namespace

int main() {
  std::printf("Deterministic bank: %u tellers x %u transfers over %u accounts\n\n", kTellers,
              kTransfersPerTeller, kAccounts);
  const RunOutcome a = run_bank();
  const RunOutcome b = run_bank();

  std::printf("run 1 balances: ");
  for (std::int64_t v : a.balances) std::printf("%lld ", static_cast<long long>(v));
  std::printf(" (lock-order %016llx)\n", static_cast<unsigned long long>(a.lock_order_hash));
  std::printf("run 2 balances: ");
  for (std::int64_t v : b.balances) std::printf("%lld ", static_cast<long long>(v));
  std::printf(" (lock-order %016llx)\n\n", static_cast<unsigned long long>(b.lock_order_hash));

  const std::int64_t total = std::accumulate(a.balances.begin(), a.balances.end(), std::int64_t{0});
  const bool identical = a.balances == b.balances && a.lock_order_hash == b.lock_order_hash;
  std::printf("money conserved: %s (total %lld)\n", total == 8000 ? "yes" : "NO", static_cast<long long>(total));
  std::printf("runs identical:  %s\n", identical ? "yes" : "NO");
  return identical && total == 8000 ? 0 : 1;
}
