// End-to-end smoke: build a lock-heavy counter program, instrument it with
// the full DetLock pipeline, and check (a) results are correct under every
// backend, and (b) the deterministic backend reproduces the exact global
// lock-acquisition order across repeated runs.
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "pass/pipeline.hpp"
#include "workloads/common.hpp"

namespace detlock {
namespace {

constexpr std::uint32_t kThreads = 4;
constexpr std::uint32_t kIters = 200;

interp::RunResult run_counter(bool deterministic, pass::PassOptions options) {
  workloads::Workload w = workloads::make_counter_workload(kThreads, kIters);
  pass::instrument_module(w.module, options);
  interp::EngineConfig config;
  config.deterministic = deterministic;
  config.memory_words = 1 << 16;
  interp::Engine engine(w.module, config);
  return engine.run(w.main_func);
}

TEST(Smoke, NondeterministicBackendComputesCorrectSum) {
  const interp::RunResult r = run_counter(false, pass::PassOptions::none());
  EXPECT_EQ(r.main_return, static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(r.threads, kThreads);  // main runs worker 0 itself
}

TEST(Smoke, DeterministicBackendComputesCorrectSum) {
  const interp::RunResult r = run_counter(true, pass::PassOptions::none());
  EXPECT_EQ(r.main_return, static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(r.lock_acquires, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Smoke, DeterministicRunsHaveIdenticalLockOrder) {
  const interp::RunResult a = run_counter(true, pass::PassOptions::none());
  const interp::RunResult b = run_counter(true, pass::PassOptions::none());
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.memory_fingerprint, b.memory_fingerprint);
  EXPECT_EQ(a.final_clocks, b.final_clocks);
}

TEST(Smoke, AllOptimizationsPreserveCorrectnessAndDeterminism) {
  const interp::RunResult a = run_counter(true, pass::PassOptions::all());
  const interp::RunResult b = run_counter(true, pass::PassOptions::all());
  EXPECT_EQ(a.main_return, static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.memory_fingerprint, b.memory_fingerprint);
}

TEST(Smoke, OptimizedProgramExecutesFewerClockUpdates) {
  const interp::RunResult unopt = run_counter(true, pass::PassOptions::none());
  const interp::RunResult opt = run_counter(true, pass::PassOptions::all());
  EXPECT_GT(unopt.clock_update_instrs, 0u);
  EXPECT_LT(opt.clock_update_instrs, unopt.clock_update_instrs);
}

}  // namespace
}  // namespace detlock
