// Replica fault detection end to end (the paper's fault-tolerance
// motivation): record a workload's schedule, validate replicas against it,
// and confirm that a genuinely different execution is flagged at the first
// divergent acquisition.
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "pass/pipeline.hpp"
#include "runtime/schedule.hpp"
#include "workloads/workloads.hpp"

namespace detlock {
namespace {

using runtime::ScheduleValidator;
using runtime::TraceEvent;

workloads::Workload build(std::uint32_t scale = 1) {
  workloads::WorkloadParams params;
  params.threads = 4;
  params.scale = scale;
  return workloads::all_workloads()[3].factory(params);  // radiosity: lock-heavy
}

std::vector<TraceEvent> record_schedule() {
  workloads::Workload w = build();
  pass::instrument_module(w.module, pass::PassOptions::all());
  interp::EngineConfig config;
  config.memory_words = 1 << 16;
  config.runtime.keep_trace_events = true;
  interp::Engine engine(w.module, config);
  engine.run(w.main_func);
  return engine.backend().trace().events();
}

TEST(Replica, IdenticalReplicaValidates) {
  const std::vector<TraceEvent> recorded = record_schedule();
  ASSERT_GT(recorded.size(), 1000u);

  ScheduleValidator validator(recorded);
  workloads::Workload w = build();
  pass::instrument_module(w.module, pass::PassOptions::all());
  interp::EngineConfig config;
  config.memory_words = 1 << 16;
  config.runtime.validator = &validator;
  interp::Engine engine(w.module, config);
  engine.run(w.main_func);
  EXPECT_TRUE(validator.complete());
}

TEST(Replica, LongerExecutionCaughtAtOverrun) {
  const std::vector<TraceEvent> recorded = record_schedule();

  // A replica with scale 2 performs the recording's acquisitions exactly
  // and then keeps going (the task loop is a prefix-extension): the
  // validator flags it at the first acquisition past the recording.
  ScheduleValidator validator(recorded);
  workloads::Workload w = build(/*scale=*/2);
  pass::instrument_module(w.module, pass::PassOptions::all());
  interp::EngineConfig config;
  config.memory_words = 1 << 16;
  config.runtime.validator = &validator;
  interp::Engine engine(w.module, config);
  EXPECT_THROW(engine.run(w.main_func), Error);
  EXPECT_EQ(validator.position(), recorded.size());
}

TEST(Replica, DifferentThreadCountCaughtEarly) {
  const std::vector<TraceEvent> recorded = record_schedule();

  // A replica misconfigured to 2 threads diverges almost immediately: the
  // interleaving after the startup barrier involves different thread ids.
  ScheduleValidator validator(recorded);
  workloads::WorkloadParams params;
  params.threads = 2;
  params.scale = 1;
  workloads::Workload w = workloads::all_workloads()[3].factory(params);
  pass::instrument_module(w.module, pass::PassOptions::all());
  interp::EngineConfig config;
  config.memory_words = 1 << 16;
  config.runtime.validator = &validator;
  interp::Engine engine(w.module, config);
  EXPECT_THROW(engine.run(w.main_func), Error);
  EXPECT_LT(validator.position(), 100u);
}

TEST(Replica, TamperedScheduleIsRejected) {
  std::vector<TraceEvent> recorded = record_schedule();
  ASSERT_GT(recorded.size(), 100u);
  recorded[100].clock += 1;  // single-bit-flip analogue in the recording

  ScheduleValidator validator(recorded);
  workloads::Workload w = build();
  pass::instrument_module(w.module, pass::PassOptions::all());
  interp::EngineConfig config;
  config.memory_words = 1 << 16;
  config.runtime.validator = &validator;
  interp::Engine engine(w.module, config);
  EXPECT_THROW(engine.run(w.main_func), Error);
  EXPECT_EQ(validator.position(), 100u);  // flagged exactly at the tamper point
}

TEST(Replica, SerializedRoundTripValidates) {
  const std::vector<TraceEvent> recorded = record_schedule();
  const std::vector<TraceEvent> reparsed = runtime::parse_schedule(runtime::serialize_schedule(recorded));
  ASSERT_EQ(reparsed.size(), recorded.size());

  ScheduleValidator validator(reparsed);
  workloads::Workload w = build();
  pass::instrument_module(w.module, pass::PassOptions::all());
  interp::EngineConfig config;
  config.memory_words = 1 << 16;
  config.runtime.validator = &validator;
  interp::Engine engine(w.module, config);
  engine.run(w.main_func);
  EXPECT_TRUE(validator.complete());
}

}  // namespace
}  // namespace detlock
