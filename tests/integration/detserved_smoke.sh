#!/bin/sh
# detserved end-to-end smoke: boots the server on a private Unix socket,
# drives it with three CONCURRENT python clients (healthy jobs, a chaos
# job, and an intentional ABBA deadlock that must classify as exit 8
# without disturbing its neighbors), then SIGTERMs the server mid-batch
# while slow jobs are parked and requires a clean drain: running work
# resolved, backlog answered with ABORTED frames, exit status 0.
#
# Usage: detserved_smoke.sh DETSERVED SERVE_CLIENT_PY PROGRAMS_DIR
set -eu

DETSERVED="$1"
CLIENT="$2"
PROGRAMS="$3"

WORKDIR=$(mktemp -d detserved_smoke.XXXXXX)
SOCK="$WORKDIR/detserved.sock"
SERVER_PID=""

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

"$DETSERVED" --listen="unix:$SOCK" --workers=2 --queue-cap=4 \
  --deadline-ms=5000 --drain-timeout-ms=500 > "$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the socket to appear (the server prints its address once bound).
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "detserved_smoke: server never bound $SOCK" >&2
    cat "$WORKDIR/server.log" >&2
    exit 1
  fi
  sleep 0.1
done

# Phase 1: three concurrent clients with mixed expectations.
python3 "$CLIENT" --connect "unix:$SOCK" \
  "hello;$PROGRAMS/hello_locks.dl;0;runs=2" \
  "producer;$PROGRAMS/producer_consumer.dl;0;chaos=1 chaos-trials=2 chaos-seed=11" \
  > "$WORKDIR/c1.log" 2>&1 &
C1=$!
python3 "$CLIENT" --connect "unix:$SOCK" \
  "abba;$PROGRAMS/abba_deadlock.dl;8;watchdog-ms=400" \
  "hello2;$PROGRAMS/hello_locks.dl;0" \
  > "$WORKDIR/c2.log" 2>&1 &
C2=$!
python3 "$CLIENT" --connect "unix:$SOCK" \
  "queue;$PROGRAMS/bounded_queue_cv.dl;0;runs=2" \
  "hello3;$PROGRAMS/hello_locks.dl;0;profile=1" \
  > "$WORKDIR/c3.log" 2>&1 &
C3=$!

rc=0
for pid in $C1 $C2 $C3; do
  wait "$pid" || rc=1
done
if [ "$rc" -ne 0 ]; then
  echo "detserved_smoke: a phase-1 client failed" >&2
  cat "$WORKDIR"/c*.log >&2
  exit 1
fi

# Phase 2: park slow deadlock jobs, SIGTERM mid-batch, require a clean
# drain -- every accepted job answered (deadlock 8 or aborted 4), a
# clean drained frame on the wire, and server exit status 0.
python3 "$CLIENT" --connect "unix:$SOCK" --drain \
  "slow0;$PROGRAMS/abba_deadlock.dl;4|8;watchdog-ms=3000" \
  "slow1;$PROGRAMS/abba_deadlock.dl;4|8;watchdog-ms=3000" \
  "slow2;$PROGRAMS/abba_deadlock.dl;4|8;watchdog-ms=3000" \
  > "$WORKDIR/drain.log" 2>&1 &
DRAIN_CLIENT=$!

sleep 1  # let the batch land: one running, the rest parked
kill -TERM "$SERVER_PID"
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
SERVER_PID=""
if [ "$SERVER_RC" -ne 0 ]; then
  echo "detserved_smoke: drain exited $SERVER_RC, want 0" >&2
  cat "$WORKDIR/server.log" "$WORKDIR/drain.log" >&2
  exit 1
fi
if ! wait "$DRAIN_CLIENT"; then
  echo "detserved_smoke: drain client failed" >&2
  cat "$WORKDIR/drain.log" >&2
  exit 1
fi

grep -q "drained clean" "$WORKDIR/server.log"
echo "detserved_smoke: OK"
