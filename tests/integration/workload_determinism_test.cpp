// The headline property, end to end: every workload, under every
// optimization level and both clock-publication models, reproduces the
// exact global lock-acquisition order, final memory image, and final
// logical clocks across repeated runs -- and computes the same checksum the
// nondeterministic baseline computes.
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "pass/pipeline.hpp"
#include "workloads/harness.hpp"
#include "workloads/workloads.hpp"

namespace detlock {
namespace {

using workloads::all_workloads;
using workloads::Workload;
using workloads::WorkloadParams;
using workloads::WorkloadSpec;

struct RunSignature {
  std::int64_t checksum = 0;
  std::uint64_t trace = 0;
  std::uint64_t memory = 0;
  std::vector<std::uint64_t> final_clocks;

  bool operator==(const RunSignature&) const = default;
};

RunSignature run_once(const WorkloadSpec& spec, const WorkloadParams& params, bool deterministic,
                      const pass::PassOptions& options, bool instrument,
                      runtime::ClockPublication publication = runtime::ClockPublication::kEveryUpdate) {
  Workload w = spec.factory(params);
  if (instrument) pass::instrument_module(w.module, options);
  interp::EngineConfig config;
  config.deterministic = deterministic;
  config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
  config.runtime.publication = publication;
  config.runtime.chunk_size = 512;
  interp::Engine engine(w.module, config);
  const interp::RunResult r = engine.run(w.main_func);
  return RunSignature{r.main_return, r.trace_fingerprint, r.memory_fingerprint, r.final_clocks};
}

WorkloadParams small_params() {
  WorkloadParams p;
  p.threads = 4;
  p.scale = 1;
  return p;
}

class PerWorkload : public ::testing::TestWithParam<std::size_t> {
 protected:
  const WorkloadSpec& spec() const { return all_workloads()[GetParam()]; }
};

TEST_P(PerWorkload, DeterministicRunsAreIdentical) {
  const RunSignature a = run_once(spec(), small_params(), true, pass::PassOptions::all(), true);
  const RunSignature b = run_once(spec(), small_params(), true, pass::PassOptions::all(), true);
  const RunSignature c = run_once(spec(), small_params(), true, pass::PassOptions::all(), true);
  EXPECT_EQ(a, b) << spec().name;
  EXPECT_EQ(b, c) << spec().name;
}

TEST_P(PerWorkload, EveryOptimizationLevelPreservesChecksumAndDeterminism) {
  const RunSignature baseline = run_once(spec(), small_params(), false, pass::PassOptions::none(), false);
  for (const pass::PassOptions& options :
       {pass::PassOptions::none(), pass::PassOptions::only_opt1(), pass::PassOptions::only_opt2(),
        pass::PassOptions::only_opt3(), pass::PassOptions::only_opt4(), pass::PassOptions::all()}) {
    const RunSignature a = run_once(spec(), small_params(), true, options, true);
    const RunSignature b = run_once(spec(), small_params(), true, options, true);
    EXPECT_EQ(a.checksum, baseline.checksum) << spec().name << ": optimization changed program output";
    EXPECT_EQ(a.trace, b.trace) << spec().name;
    EXPECT_EQ(a.memory, b.memory) << spec().name;
    EXPECT_EQ(a.final_clocks, b.final_clocks) << spec().name;
  }
}

TEST_P(PerWorkload, KendoChunkedPublicationIsAlsoDeterministic) {
  const RunSignature a = run_once(spec(), small_params(), true, pass::PassOptions::none(), true,
                                  runtime::ClockPublication::kChunked);
  const RunSignature b = run_once(spec(), small_params(), true, pass::PassOptions::none(), true,
                                  runtime::ClockPublication::kChunked);
  EXPECT_EQ(a, b) << spec().name;
}

TEST_P(PerWorkload, EndOfBlockPlacementIsAlsoDeterministic) {
  pass::PassOptions options = pass::PassOptions::only_opt1();
  options.placement = pass::ClockPlacement::kEnd;
  const RunSignature a = run_once(spec(), small_params(), true, options, true);
  const RunSignature b = run_once(spec(), small_params(), true, options, true);
  EXPECT_EQ(a, b) << spec().name;
}

TEST_P(PerWorkload, TwoThreadConfigurationAlsoDeterministic) {
  WorkloadParams params = small_params();
  params.threads = 2;
  const RunSignature a = run_once(spec(), params, true, pass::PassOptions::all(), true);
  const RunSignature b = run_once(spec(), params, true, pass::PassOptions::all(), true);
  EXPECT_EQ(a, b) << spec().name;
}

TEST_P(PerWorkload, InstrumentationDoesNotChangeNondetChecksum) {
  const RunSignature plain = run_once(spec(), small_params(), false, pass::PassOptions::none(), false);
  const RunSignature instrumented = run_once(spec(), small_params(), false, pass::PassOptions::all(), true);
  EXPECT_EQ(plain.checksum, instrumented.checksum) << spec().name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PerWorkload, ::testing::Range<std::size_t>(0, 5),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return std::string(all_workloads()[info.param].name);
                         });

TEST(Harness, MeasureReportsPlausibleNumbers) {
  workloads::MeasureOptions options;
  options.mode = workloads::Mode::kDetLock;
  options.pass_options = pass::PassOptions::all();
  options.repetitions = 1;
  const workloads::Measurement m =
      workloads::measure(all_workloads()[3] /* radiosity */, small_params(), options);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_GT(m.run.sync.lock_acquires, 100u);
  EXPECT_GT(m.locks_per_sec, 0.0);
  EXPECT_GT(m.pass_stats.clocked_functions, 0u);
}

}  // namespace
}  // namespace detlock
