// The condvar task-farm workload: correctness + determinism at scale
// through the full pipeline.
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "pass/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace detlock {
namespace {

struct FarmRun {
  std::int64_t checksum = 0;
  std::uint64_t trace = 0;
  std::uint64_t memory = 0;

  bool operator==(const FarmRun&) const = default;
};

FarmRun run_farm(std::uint32_t threads, bool deterministic, const pass::PassOptions& options) {
  workloads::WorkloadParams params;
  params.threads = threads;
  params.scale = 1;
  workloads::Workload w = workloads::make_taskfarm_cv(params);
  pass::instrument_module(w.module, options);
  interp::EngineConfig config;
  config.deterministic = deterministic;
  config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
  interp::Engine engine(w.module, config);
  const interp::RunResult r = engine.run(w.main_func);
  return FarmRun{r.main_return, r.trace_fingerprint, r.memory_fingerprint};
}

class TaskFarmCv : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TaskFarmCv, ChecksumIsScheduleInvariant) {
  const FarmRun det = run_farm(GetParam(), true, pass::PassOptions::all());
  const FarmRun nondet = run_farm(GetParam(), false, pass::PassOptions::none());
  EXPECT_EQ(det.checksum, nondet.checksum);
  EXPECT_NE(det.checksum, 0);
}

TEST_P(TaskFarmCv, DeterministicAcrossRunsAndOptLevels) {
  for (const pass::PassOptions& options :
       {pass::PassOptions::none(), pass::PassOptions::only_opt1(), pass::PassOptions::all()}) {
    const FarmRun a = run_farm(GetParam(), true, options);
    const FarmRun b = run_farm(GetParam(), true, options);
    EXPECT_EQ(a, b) << "threads " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, TaskFarmCv, ::testing::Values(2u, 3u, 4u, 6u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(TaskFarmCv, Opt1ClocksTheChewLeaf) {
  workloads::WorkloadParams params;
  params.threads = 4;
  workloads::Workload w = workloads::make_taskfarm_cv(params);
  const pass::PipelineStats stats = pass::instrument_module(w.module, pass::PassOptions::only_opt1());
  EXPECT_GE(stats.clocked_functions, 1u);
}

}  // namespace
}  // namespace detlock
