// Engine-level fault and watchdog integration: a guest deadlock is caught,
// classified, and reported with the exact wait-for cycle; an injected
// thread death aborts the whole run instead of hanging it; a lost condvar
// signal is classified as a stall, not a deadlock.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "pass/pipeline.hpp"
#include "runtime/faultinject.hpp"
#include "support/error.hpp"

namespace detlock {
namespace {

// The share/programs/abba_deadlock.dl shape: the compute stretch between
// each worker's two acquisitions is what lets the deterministic turn
// protocol interleave the first acquisitions into the deadlock.
constexpr const char* kAbbaProgram = R"(
func @worker_ab(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 1
  lock %1
  %4 = const 0
  %5 = const 64
  %6 = const 1
  br spin
block spin:
  %4 = add %4, %6
  %7 = icmp lt %4, %5
  condbr %7, spin, rest
block rest:
  lock %2
  %3 = const 200
  store %3, %0
  unlock %2
  unlock %1
  ret
}

func @worker_ba(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 1
  lock %2
  %4 = const 0
  %5 = const 64
  %6 = const 1
  br spin
block spin:
  %4 = add %4, %6
  %7 = icmp lt %4, %5
  condbr %7, spin, rest
block rest:
  lock %1
  %3 = const 201
  store %3, %0
  unlock %1
  unlock %2
  ret
}

func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @worker_ab(%0)
  %2 = const 2
  %3 = spawn @worker_ba(%2)
  join %1
  join %3
  %4 = const 0
  ret %4
}
)";

// Two workers pounding the same mutex; one of them will be killed by the
// fault plan while holding it.
constexpr const char* kPounderProgram = R"(
func @pounder(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 0
  %3 = const 40
  %4 = const 1
  br loop
block loop:
  lock %1
  store %1, %2
  unlock %1
  %2 = add %2, %4
  %5 = icmp lt %2, %3
  condbr %5, loop, done
block done:
  ret
}

func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @pounder(%0)
  %2 = const 2
  %3 = spawn @pounder(%2)
  join %1
  join %3
  %4 = const 0
  ret %4
}
)";

// One waiter, one signal -- and the fault plan swallows it.  Main's spin
// stretch pushes its instrumented clock past the waiter's, so the waiter
// deterministically takes the mutex first and is queued on the condvar
// before main signals.
constexpr const char* kLostSignalProgram = R"(
func @waiter(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 5
  lock %1
  br check
block check:
  %3 = load %2
  %4 = const 0
  %5 = icmp eq %3, %4
  condbr %5, wait, done
block wait:
  condwait %1, %1
  br check
block done:
  unlock %1
  ret
}

func @main(0) regs=16 {
block entry:
  %0 = const 0
  %1 = spawn @waiter(%0)
  %2 = const 0
  %3 = const 64
  %4 = const 1
  %5 = const 0
  br spin
block spin:
  %5 = add %5, %4
  %6 = icmp lt %5, %3
  condbr %6, spin, work
block work:
  lock %2
  %7 = const 5
  %8 = const 1
  store %7, %8
  condsignal %2
  unlock %2
  join %1
  %9 = const 0
  ret %9
}
)";

interp::Engine make_engine(const char* text, ir::Module& module, interp::EngineConfig config) {
  module = ir::parse_module(text);
  pass::instrument_module(module, pass::PassOptions::all());
  config.deterministic = true;
  return interp::Engine(module, config);
}

TEST(FaultWatchdog, GuestDeadlockIsDiagnosedWithTheExactCycle) {
  ir::Module module;
  interp::EngineConfig config;
  config.runtime.watchdog_ms = 300;
  interp::Engine engine = make_engine(kAbbaProgram, module, config);
  EXPECT_THROW(engine.run("main"), Error);

  ASSERT_NE(engine.watchdog(), nullptr);
  EXPECT_TRUE(engine.watchdog()->fired());
  const auto report = engine.watchdog()->report();
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->deadlock);
  EXPECT_EQ(report->cycle, (std::vector<runtime::ThreadId>{1, 2}));
  EXPECT_NE(report->text().find("DEADLOCK"), std::string::npos) << report->text();
  EXPECT_NE(report->json().find("\"cycle\":[1,2]"), std::string::npos) << report->json();
}

TEST(FaultWatchdog, DisabledWatchdogConstructsNoMonitorAndRunsClean) {
  // Zero-cost-when-disabled at the engine layer: watchdog_ms = 0 means no
  // monitor thread, no progress counter, and an untouched fast path.
  ir::Module module;
  interp::EngineConfig config;  // watchdog_ms = 0
  interp::Engine engine = make_engine(kPounderProgram, module, config);
  EXPECT_EQ(engine.watchdog(), nullptr);
  (void)engine.run("main");  // terminates normally without any monitor
}

TEST(FaultWatchdog, InjectedThreadDeathAbortsTheRunInsteadOfHanging) {
  runtime::FaultPlan plan;
  plan.die_thread = 1;
  plan.die_after_ops = 5;
  plan.die_point = static_cast<int>(runtime::SyncPoint::kLockAcquired);
  runtime::FaultInjector injector(plan, runtime::RuntimeConfig{}.max_threads);

  ir::Module module;
  interp::EngineConfig config;
  config.runtime.fault = &injector;
  // Watchdog as a backstop only: the cooperative abort must win long before
  // the window elapses.
  config.runtime.watchdog_ms = 10'000;
  interp::Engine engine = make_engine(kPounderProgram, module, config);
  EXPECT_THROW(engine.run("main"), Error);
  EXPECT_EQ(injector.stats().deaths, 1u);
  EXPECT_FALSE(engine.watchdog()->fired()) << "abort should beat the watchdog backstop";
}

TEST(FaultWatchdog, LostSignalIsClassifiedAsStallNotDeadlock) {
  runtime::FaultPlan plan;
  plan.drop_signal_index = 0;  // swallow the only wakeup
  runtime::FaultInjector injector(plan, runtime::RuntimeConfig{}.max_threads);

  ir::Module module;
  interp::EngineConfig config;
  config.runtime.fault = &injector;
  config.runtime.watchdog_ms = 300;
  interp::Engine engine = make_engine(kLostSignalProgram, module, config);
  EXPECT_THROW(engine.run("main"), Error);

  EXPECT_EQ(injector.stats().dropped_signals, 1u) << "the signal must have been swallowed";
  ASSERT_NE(engine.watchdog(), nullptr);
  EXPECT_TRUE(engine.watchdog()->fired());
  const auto report = engine.watchdog()->report();
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->deadlock) << report->text();
  EXPECT_NE(report->text().find("STALL"), std::string::npos) << report->text();
  EXPECT_NE(report->json().find("\"type\":\"stall\""), std::string::npos) << report->json();
}

}  // namespace
}  // namespace detlock
