// Structural checks on the five workloads: do they actually have the
// features the paper's results hinge on?  (These are the contract between
// src/workloads and the bench harnesses -- if someone "simplifies" a
// workload, these fail before the tables silently lose their shape.)
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "pass/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace detlock {
namespace {

using workloads::all_workloads;
using workloads::Workload;
using workloads::WorkloadParams;

struct Profile {
  std::uint64_t instructions = 0;
  std::uint64_t locks = 0;
  std::uint64_t barriers = 0;
  std::uint64_t clock_updates = 0;
  std::size_t clocked_functions = 0;
  double locks_per_instruction() const {
    return instructions == 0 ? 0.0 : static_cast<double>(locks) / static_cast<double>(instructions);
  }
  double clock_fraction() const {
    return instructions == 0 ? 0.0 : static_cast<double>(clock_updates) / static_cast<double>(instructions);
  }
};

Profile profile_of(std::size_t index, const pass::PassOptions& options) {
  WorkloadParams params;
  params.threads = 4;
  params.scale = 1;
  Workload w = all_workloads()[index].factory(params);
  const pass::PipelineStats stats = pass::instrument_module(w.module, options);
  interp::EngineConfig config;
  config.deterministic = false;  // structure only; fastest
  config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
  interp::Engine engine(w.module, config);
  const interp::RunResult r = engine.run(w.main_func);
  Profile p;
  p.instructions = r.instructions;
  p.locks = r.sync.lock_acquires;
  p.barriers = r.sync.barrier_waits;
  p.clock_updates = r.clock_update_instrs;
  p.clocked_functions = stats.clocked_functions;
  return p;
}

enum : std::size_t { kOcean = 0, kRaytrace = 1, kWater = 2, kRadiosity = 3, kVolrend = 4 };

TEST(WorkloadStructure, LockRateOrderingMatchesTableOne) {
  // Paper Table I locks/sec: radiosity >> volrend > raytrace > water >> ocean.
  std::vector<double> rate;
  for (std::size_t i = 0; i < 5; ++i) rate.push_back(profile_of(i, pass::PassOptions::none()).locks_per_instruction());
  EXPECT_GT(rate[kRadiosity], 2.0 * rate[kVolrend]);
  EXPECT_GT(rate[kVolrend], rate[kWater]);
  EXPECT_GT(rate[kRaytrace], rate[kWater]);
  EXPECT_GT(rate[kWater], 3.0 * rate[kOcean]);
}

TEST(WorkloadStructure, OceanIsBarrierDominated) {
  const Profile p = profile_of(kOcean, pass::PassOptions::none());
  EXPECT_GT(p.barriers, p.locks);
  EXPECT_LT(p.locks_per_instruction(), 1e-4);
}

TEST(WorkloadStructure, WaterHasHighestUnoptimizedClockFraction) {
  // The "small loop with an if" signature: water pays the most clock
  // updates per instruction without optimizations (paper: 43%).
  std::vector<double> fraction;
  for (std::size_t i = 0; i < 5; ++i) {
    fraction.push_back(profile_of(i, pass::PassOptions::none()).clock_fraction());
  }
  for (std::size_t i = 0; i < 5; ++i) {
    if (i != kWater) {
      EXPECT_GE(fraction[kWater], fraction[i]) << "workload " << i;
    }
  }
  EXPECT_LT(fraction[kOcean], 0.5 * fraction[kWater]);
}

TEST(WorkloadStructure, RadiosityHasClockableFunctionsAndO1Removes) {
  const Profile none = profile_of(kRadiosity, pass::PassOptions::none());
  const Profile o1 = profile_of(kRadiosity, pass::PassOptions::only_opt1());
  EXPECT_GE(o1.clocked_functions, 2u);  // intersection_type + patch_value
  // Function Clocking removes the leaf-body updates: a large executed-count
  // drop (paper: 41% -> 30% of a much larger base).
  EXPECT_LT(o1.clock_updates, none.clock_updates / 2);
}

TEST(WorkloadStructure, RaytraceHasClockableDotProduct) {
  const Profile o1 = profile_of(kRaytrace, pass::PassOptions::only_opt1());
  EXPECT_GE(o1.clocked_functions, 1u);  // dot3
}

TEST(WorkloadStructure, WaterBenefitsFromLoopOptimization) {
  const Profile none = profile_of(kWater, pass::PassOptions::none());
  const Profile o4 = profile_of(kWater, pass::PassOptions::only_opt4());
  // The inner-loop latch merge removes one update per pair iteration.
  EXPECT_LT(o4.clock_updates, none.clock_updates);
  EXPECT_GT(none.clock_updates - o4.clock_updates, none.clock_updates / 10);
}

TEST(WorkloadStructure, AllOptimizationsReduceEveryWorkloadsClockUpdates) {
  for (std::size_t i = 0; i < 5; ++i) {
    const Profile none = profile_of(i, pass::PassOptions::none());
    const Profile all = profile_of(i, pass::PassOptions::all());
    EXPECT_LE(all.clock_updates, none.clock_updates) << all_workloads()[i].name;
    EXPECT_LT(all.clock_updates, none.clock_updates) << all_workloads()[i].name;
  }
}

TEST(WorkloadStructure, ScaleParameterScalesWork) {
  WorkloadParams small;
  small.threads = 2;
  small.scale = 1;
  WorkloadParams big = small;
  big.scale = 3;
  for (const auto& spec : all_workloads()) {
    Workload ws = spec.factory(small);
    Workload wb = spec.factory(big);
    interp::EngineConfig config;
    config.deterministic = false;
    config.memory_words = std::max<std::size_t>(ws.memory_words, 1 << 14) * 2;
    interp::Engine es(ws.module, config);
    interp::EngineConfig config_b = config;
    config_b.memory_words = std::max<std::size_t>(wb.memory_words, 1 << 14) * 2;
    interp::Engine eb(wb.module, config_b);
    const std::uint64_t is = es.run(ws.main_func).instructions;
    const std::uint64_t ib = eb.run(wb.main_func).instructions;
    EXPECT_GT(ib, 2 * is) << spec.name;  // ~3x work expected, allow slack
  }
}

TEST(WorkloadStructure, ThreadCountsDivideCleanly) {
  // The generators assume threads in {1, 2, 4} at minimum (water partitions
  // 96 molecules).  Each should run to completion with correct checksums.
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    WorkloadParams params;
    params.threads = threads;
    params.scale = 1;
    for (const auto& spec : all_workloads()) {
      Workload w = spec.factory(params);
      interp::EngineConfig config;
      config.deterministic = false;
      config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
      interp::Engine engine(w.module, config);
      EXPECT_NO_THROW(engine.run(w.main_func)) << spec.name << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace detlock
