// Determinism under chaos, the fault-injection layer's headline claim:
// adversarial physical-timing perturbation (random sleeps, yield storms,
// spin bursts, delayed clock publication) at every sync-op boundary must
// leave the lock-acquisition trace, the final memory image, the final
// logical clocks, and the checksum bit-identical to an unperturbed run --
// for every workload, across a matrix of seeds, in both clock-publication
// models.  See docs/fault-model.md.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "interp/engine.hpp"
#include "pass/pipeline.hpp"
#include "runtime/faultinject.hpp"
#include "workloads/workloads.hpp"

namespace detlock {
namespace {

using workloads::all_workloads;
using workloads::Workload;
using workloads::WorkloadParams;
using workloads::WorkloadSpec;

struct RunSignature {
  std::int64_t checksum = 0;
  std::uint64_t trace = 0;
  std::uint64_t memory = 0;
  std::vector<std::uint64_t> final_clocks;

  bool operator==(const RunSignature&) const = default;
};

RunSignature run_once(const WorkloadSpec& spec, const WorkloadParams& params,
                      const pass::PassOptions& options, runtime::ClockPublication publication,
                      runtime::FaultInjector* fault) {
  Workload w = spec.factory(params);
  pass::instrument_module(w.module, options);
  interp::EngineConfig config;
  config.deterministic = true;
  config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
  config.runtime.publication = publication;
  config.runtime.chunk_size = 512;
  config.runtime.fault = fault;
  interp::Engine engine(w.module, config);
  const interp::RunResult r = engine.run(w.main_func);
  return RunSignature{r.main_return, r.trace_fingerprint, r.memory_fingerprint, r.final_clocks};
}

WorkloadParams small_params() {
  WorkloadParams p;
  p.threads = 4;
  p.scale = 1;
  return p;
}

// Short sleeps keep the whole seed matrix fast; the yield storms and spin
// bursts are unaffected and remain the scheduler-reshuffling workhorse.
runtime::FaultPlan fast_chaos(std::uint64_t seed) {
  runtime::FaultPlan plan = runtime::FaultPlan::timing_chaos(seed);
  plan.max_sleep_us = 5;
  return plan;
}

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34};

class ChaosPerWorkload : public ::testing::TestWithParam<std::size_t> {
 protected:
  const WorkloadSpec& spec() const { return all_workloads()[GetParam()]; }
};

TEST_P(ChaosPerWorkload, TimingChaosCannotChangeTheOutcome) {
  const RunSignature clean =
      run_once(spec(), small_params(), pass::PassOptions::all(),
               runtime::ClockPublication::kEveryUpdate, nullptr);
  for (const std::uint64_t seed : kSeeds) {
    runtime::FaultInjector injector(fast_chaos(seed), runtime::RuntimeConfig{}.max_threads);
    const RunSignature chaotic =
        run_once(spec(), small_params(), pass::PassOptions::all(),
                 runtime::ClockPublication::kEveryUpdate, &injector);
    EXPECT_EQ(chaotic, clean) << spec().name << " diverged under chaos seed " << seed;
    EXPECT_GT(injector.stats().sync_ops, 0u) << spec().name;
  }
}

TEST_P(ChaosPerWorkload, TimingChaosCannotChangeChunkedPublicationEither) {
  // kChunked is the timing-sensitive configuration (clocks published late,
  // in chunks): exactly where a delayed-publication perturbation would bite
  // if the turn protocol ever read a stale clock unsoundly.
  const RunSignature clean =
      run_once(spec(), small_params(), pass::PassOptions::none(),
               runtime::ClockPublication::kChunked, nullptr);
  for (const std::uint64_t seed : kSeeds) {
    runtime::FaultInjector injector(fast_chaos(seed), runtime::RuntimeConfig{}.max_threads);
    const RunSignature chaotic =
        run_once(spec(), small_params(), pass::PassOptions::none(),
                 runtime::ClockPublication::kChunked, &injector);
    EXPECT_EQ(chaotic, clean) << spec().name << " (kChunked) diverged under chaos seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ChaosPerWorkload, ::testing::Range<std::size_t>(0, 5),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return std::string(all_workloads()[info.param].name);
                         });

}  // namespace
}  // namespace detlock
