// Profiling must be a pure observer: with the wait-time profiler enabled
// (including span recording for trace export), every workload produces
// bit-identical trace and memory fingerprints to the unprofiled run, and the
// collected summary satisfies the conservation invariants.
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "pass/pipeline.hpp"
#include "runtime/profile.hpp"
#include "workloads/workloads.hpp"

namespace detlock {
namespace {

using workloads::all_workloads;
using workloads::Workload;
using workloads::WorkloadParams;
using workloads::WorkloadSpec;

struct ProfiledRun {
  std::int64_t checksum = 0;
  std::uint64_t trace = 0;
  std::uint64_t memory = 0;
  std::vector<std::uint64_t> final_clocks;
  runtime::ProfileSummary profile;  // empty unless profiling was on
};

ProfiledRun run_once(const WorkloadSpec& spec, const WorkloadParams& params, bool profile) {
  Workload w = spec.factory(params);
  pass::instrument_module(w.module, pass::PassOptions::all());
  interp::EngineConfig config;
  config.deterministic = true;
  config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
  config.runtime.profile = profile;
  config.runtime.profile_spans = profile;  // the trace-export path, too
  interp::Engine engine(w.module, config);
  const interp::RunResult r = engine.run(w.main_func);
  ProfiledRun out{r.main_return, r.trace_fingerprint, r.memory_fingerprint, r.final_clocks, {}};
  if (profile && engine.profiler() != nullptr) out.profile = engine.profiler()->summary();
  return out;
}

WorkloadParams small_params() {
  WorkloadParams p;
  p.threads = 4;
  p.scale = 1;
  return p;
}

class ProfiledWorkload : public ::testing::TestWithParam<std::size_t> {
 protected:
  const WorkloadSpec& spec() const { return all_workloads()[GetParam()]; }
};

TEST_P(ProfiledWorkload, FingerprintsIdenticalWithProfilingOnOrOff) {
  const ProfiledRun off = run_once(spec(), small_params(), false);
  const ProfiledRun on = run_once(spec(), small_params(), true);
  EXPECT_EQ(on.checksum, off.checksum) << spec().name;
  EXPECT_EQ(on.trace, off.trace) << spec().name << ": profiling perturbed the lock schedule";
  EXPECT_EQ(on.memory, off.memory) << spec().name << ": profiling perturbed the memory image";
  EXPECT_EQ(on.final_clocks, off.final_clocks) << spec().name;
}

TEST_P(ProfiledWorkload, SummarySatisfiesConservation) {
  const ProfiledRun r = run_once(spec(), small_params(), true);
  const runtime::ProfileSummary& s = r.profile;
  ASSERT_FALSE(s.threads.empty()) << spec().name;

  // Per thread: attributed waits fit inside the lifetime; useful is the
  // residual.  Globally: totals are the per-thread sums.
  std::uint64_t wall = 0, wait = 0;
  for (const runtime::ThreadProfile& t : s.threads) {
    EXPECT_LE(t.wait_ns(), t.wall_ns) << spec().name << " thread " << t.thread;
    EXPECT_EQ(t.useful_ns(), t.wall_ns - t.wait_ns());
    wall += t.wall_ns;
    wait += t.wait_ns();
  }
  EXPECT_EQ(s.total_wall_ns, wall) << spec().name;
  EXPECT_EQ(s.total_wait_ns, wait) << spec().name;
  EXPECT_LE(s.total_wait_ns, s.total_wall_ns) << spec().name;
  EXPECT_EQ(s.total_useful_ns, s.total_wall_ns - s.total_wait_ns) << spec().name;

  // Per mutex: contended acquires are a subset of acquires, and the worst
  // single wait cannot exceed the total.
  EXPECT_FALSE(s.mutexes.empty()) << spec().name;
  for (const runtime::MutexProfile& m : s.mutexes) {
    EXPECT_LE(m.contended, m.acquires) << spec().name << " mutex " << m.mutex;
    EXPECT_LE(m.max_wait_ns, m.wait_ns) << spec().name << " mutex " << m.mutex;
    EXPECT_GT(m.acquires, 0u) << spec().name << " mutex " << m.mutex;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ProfiledWorkload, ::testing::Range<std::size_t>(0, 5),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return std::string(all_workloads()[info.param].name);
                         });

}  // namespace
}  // namespace detlock
