// 64-guest-thread determinism across clock-table layouts.
//
// The min-clock tree (--clock-table=tree, the default) exists for exactly
// this regime: turn arbitration among 64+ guest threads.  Its contract is
// that switching the layout changes NOTHING observable about a run -- same
// trace and memory fingerprints, same instruction counts, same per-thread
// final clocks -- across engines, publication modes, and chaos seeds.
// bench/threads_sweep gates the full matrix; these tests pin the highest
// thread counts the workloads support into the regular suite, including the
// barrier-heavy water_nsq case where the releaser force-publishes resume
// clocks into the tree on behalf of parked peers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "workloads/harness.hpp"

namespace detlock::workloads {
namespace {

const WorkloadSpec& spec_named(const char* name) {
  for (const WorkloadSpec& spec : all_workloads()) {
    if (std::strcmp(spec.name, name) == 0) return spec;
  }
  ADD_FAILURE() << "no workload named " << name;
  return all_workloads().front();
}

Measurement run_with(const char* workload, std::uint32_t threads, runtime::ClockTableKind kind,
                     Mode mode, interp::EngineKind engine, bool chaos = false,
                     std::uint64_t chaos_seed = 0) {
  WorkloadParams params;
  params.threads = threads;
  params.scale = 1;
  MeasureOptions mo;
  mo.mode = mode;
  mo.engine = engine;
  mo.pass_options = pass::PassOptions::all();
  mo.clock_table = kind;
  mo.record_trace = true;
  mo.repetitions = 1;
  mo.chaos = chaos;
  mo.chaos_seed = chaos_seed;
  return measure(spec_named(workload), params, mo);
}

/// Field-by-field comparison (rather than one boolean) so a divergence
/// names the quantity that moved.
void expect_same_run(const interp::RunResult& flat, const interp::RunResult& tree) {
  EXPECT_EQ(flat.main_return, tree.main_return);
  EXPECT_EQ(flat.trace_fingerprint, tree.trace_fingerprint);
  EXPECT_EQ(flat.memory_fingerprint, tree.memory_fingerprint);
  EXPECT_EQ(flat.instructions, tree.instructions);
  EXPECT_EQ(flat.lock_acquires, tree.lock_acquires);
  EXPECT_EQ(flat.threads, tree.threads);
  EXPECT_EQ(flat.final_clocks, tree.final_clocks);
  EXPECT_EQ(flat.per_thread_instructions, tree.per_thread_instructions);
}

TEST(ClockTableModes, SixtyFourThreadsByteIdenticalAcrossLayouts) {
  for (const char* workload : {"ocean", "raytrace"}) {
    const Measurement flat = run_with(workload, 64, runtime::ClockTableKind::kFlat,
                                      Mode::kDetLock, interp::EngineKind::kDecoded);
    const Measurement tree = run_with(workload, 64, runtime::ClockTableKind::kTree,
                                      Mode::kDetLock, interp::EngineKind::kDecoded);
    SCOPED_TRACE(workload);
    EXPECT_EQ(flat.run.threads, 64u);
    expect_same_run(flat.run, tree.run);
    // turn_polls itself is a physical spin counter (how often waiters
    // re-polled; host-timing dependent, like lock_wait_spins), so no
    // equality across layouts -- but the per-poll cost contract holds for
    // any timing: the tree examines a bounded number of slot-equivalents
    // per poll where the flat scan's grows with the thread count.
    EXPECT_GT(tree.run.sync.turn_polls, 0u);
    EXPECT_LE(tree.run.sync.turn_scan_slots, 2 * tree.run.sync.turn_polls);
    EXPECT_GE(flat.run.sync.turn_scan_slots, flat.run.sync.turn_polls);
  }
}

TEST(ClockTableModes, ReferenceEngineAgreesAtSixtyFourThreads) {
  const Measurement flat = run_with("ocean", 64, runtime::ClockTableKind::kFlat, Mode::kDetLock,
                                    interp::EngineKind::kReference);
  const Measurement tree = run_with("ocean", 64, runtime::ClockTableKind::kTree, Mode::kDetLock,
                                    interp::EngineKind::kReference);
  expect_same_run(flat.run, tree.run);
}

TEST(ClockTableModes, ChunkedPublicationAgreesAtSixtyFourThreads) {
  const Measurement flat = run_with("raytrace", 64, runtime::ClockTableKind::kFlat,
                                    Mode::kKendoSim, interp::EngineKind::kDecoded);
  const Measurement tree = run_with("raytrace", 64, runtime::ClockTableKind::kTree,
                                    Mode::kKendoSim, interp::EngineKind::kDecoded);
  expect_same_run(flat.run, tree.run);
}

// water_nsq's per-step barriers at its highest supported count (96 % 64 !=
// 0, so 32 is the densest the partitioning allows): every step parks all
// 32 threads at +infinity and the releaser force-publishes 32 resume
// clocks through the tree before reopening the round.
TEST(ClockTableModes, BarrierHeavyWorkloadAgreesAtThirtyTwoThreads) {
  const Measurement flat = run_with("water_nsq", 32, runtime::ClockTableKind::kFlat,
                                    Mode::kDetLock, interp::EngineKind::kDecoded);
  const Measurement tree = run_with("water_nsq", 32, runtime::ClockTableKind::kTree,
                                    Mode::kDetLock, interp::EngineKind::kDecoded);
  expect_same_run(flat.run, tree.run);
}

TEST(ClockTableModes, ChaosPerturbationCannotSplitTheLayouts) {
  for (const std::uint64_t seed : {3u, 9u}) {
    const Measurement flat = run_with("ocean", 64, runtime::ClockTableKind::kFlat, Mode::kDetLock,
                                      interp::EngineKind::kDecoded, /*chaos=*/true, seed);
    const Measurement tree = run_with("ocean", 64, runtime::ClockTableKind::kTree, Mode::kDetLock,
                                      interp::EngineKind::kDecoded, /*chaos=*/true, seed);
    SCOPED_TRACE(seed);
    expect_same_run(flat.run, tree.run);
  }
}

}  // namespace
}  // namespace detlock::workloads
