#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace detlock {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Split, BasicDelimiter) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyTokens) {
  const auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Split, SingleTokenWithoutDelimiter) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(SplitWhitespace, CollapsesRuns) {
  const auto parts = split_whitespace("  a \t b\n  c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespace, EmptyInput) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace(" \t\n").empty());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("function", "func"));
  EXPECT_FALSE(starts_with("fun", "func"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(ParseInt, ValidInputs) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int("  13  ").value(), 13);
  EXPECT_EQ(parse_int("0").value(), 0);
}

TEST(ParseInt, InvalidInputs) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-0.125").value(), -0.125);
  EXPECT_DOUBLE_EQ(parse_double("1e3").value(), 1000.0);
}

TEST(ParseDouble, InvalidInputs) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("x").has_value());
  EXPECT_FALSE(parse_double("1.5garbage").has_value());
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%.2f", 1.0 / 3.0), "0.33");
  EXPECT_EQ(str_format("empty"), "empty");
}

}  // namespace
}  // namespace detlock
