#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "support/cacheline.hpp"
#include "support/spinwait.hpp"

namespace detlock {
namespace {

TEST(Padded, ElementsDoNotShareCacheLines) {
  std::vector<Padded<std::atomic<std::uint64_t>>> slots(4);
  for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&slots[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&slots[i + 1].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(Padded, AlignmentMatchesCacheLine) {
  Padded<int> p;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&p) % kCacheLineSize, 0u);
  EXPECT_EQ(sizeof(Padded<int>) % kCacheLineSize, 0u);
}

TEST(Padded, AccessorsReachTheValue) {
  Padded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p = 42;
  EXPECT_EQ(p.value, 42);
  Padded<std::pair<int, int>> q;
  q->first = 7;
  EXPECT_EQ(q.value.first, 7);
}

TEST(SpinWait, EscalatesWithoutBlockingForever) {
  // A waiter must make progress through all tiers and return promptly once
  // the condition flips.
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    flag.store(true, std::memory_order_release);
  });
  SpinWait waiter;
  while (!flag.load(std::memory_order_acquire)) waiter.wait();
  setter.join();
  EXPECT_GT(waiter.iterations(), 0u);
}

TEST(SpinWait, ResetRestartsCheapTier) {
  SpinWait waiter(4, 4);
  for (int i = 0; i < 20; ++i) waiter.wait();
  EXPECT_EQ(waiter.iterations(), 20u);
  waiter.reset();
  EXPECT_EQ(waiter.iterations(), 0u);
}

}  // namespace
}  // namespace detlock
