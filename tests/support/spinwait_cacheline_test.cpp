#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "support/cacheline.hpp"
#include "support/spinwait.hpp"

namespace detlock {
namespace {

TEST(Padded, ElementsDoNotShareCacheLines) {
  std::vector<Padded<std::atomic<std::uint64_t>>> slots(4);
  for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&slots[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&slots[i + 1].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(Padded, AlignmentMatchesCacheLine) {
  Padded<int> p;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&p) % kCacheLineSize, 0u);
  EXPECT_EQ(sizeof(Padded<int>) % kCacheLineSize, 0u);
}

TEST(Padded, AccessorsReachTheValue) {
  Padded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p = 42;
  EXPECT_EQ(p.value, 42);
  Padded<std::pair<int, int>> q;
  q->first = 7;
  EXPECT_EQ(q.value.first, 7);
}

TEST(SpinWait, EscalatesWithoutBlockingForever) {
  // A waiter must make progress through all tiers and return promptly once
  // the condition flips.
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    flag.store(true, std::memory_order_release);
  });
  SpinWait waiter;
  while (!flag.load(std::memory_order_acquire)) waiter.wait();
  setter.join();
  EXPECT_GT(waiter.iterations(), 0u);
}

TEST(SpinWait, ResetRestartsCheapTier) {
  SpinWait waiter(4, 4);
  for (int i = 0; i < 20; ++i) waiter.wait();
  EXPECT_EQ(waiter.iterations(), 20u);
  waiter.reset();
  EXPECT_EQ(waiter.iterations(), 0u);
}

TEST(SpinWait, SleepBackoffFollowsCappedDoublingSchedule) {
  // pause_limit = yield_limit = 0 puts every wait() in the sleep tier, so
  // the requested durations are observable through next_sleep_us().
  SpinWait waiter(0, 0, 100);
  const std::uint32_t expected[] = {1, 2, 4, 8, 16, 32, 64, 100, 100, 100};
  for (const std::uint32_t us : expected) {
    EXPECT_EQ(waiter.next_sleep_us(), us);
    waiter.wait();
  }
  EXPECT_EQ(waiter.next_sleep_us(), 100u);
}

TEST(SpinWait, SleepBackoffHoldsAtCustomCap) {
  // A doubling step that would overshoot the cap lands exactly on it and
  // stays there: 1, 2, 4, 8, 8, 8, ...
  SpinWait waiter(0, 0, 8);
  const std::uint32_t expected[] = {1, 2, 4, 8, 8, 8};
  for (const std::uint32_t us : expected) {
    EXPECT_EQ(waiter.next_sleep_us(), us);
    waiter.wait();
  }
}

TEST(SpinWait, ResetRestartsSleepBackoff) {
  SpinWait waiter(0, 0, 100);
  for (int i = 0; i < 12; ++i) waiter.wait();
  EXPECT_EQ(waiter.next_sleep_us(), 100u);
  waiter.reset();
  EXPECT_EQ(waiter.next_sleep_us(), 1u);
  waiter.wait();
  EXPECT_EQ(waiter.next_sleep_us(), 2u);
}

TEST(SpinWait, DegenerateCapNeverSleepsLongerThanOneMicrosecond) {
  SpinWait one(0, 0, 1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(one.next_sleep_us(), 1u);
    one.wait();
  }
  // max_sleep_us = 0 is clamped to 1 rather than sleeping for zero (which
  // would degrade the tier back into a hard spin).
  SpinWait zero(0, 0, 0);
  zero.wait();
  EXPECT_EQ(zero.next_sleep_us(), 1u);
}

}  // namespace
}  // namespace detlock
