#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace detlock {
namespace {

TEST(RunningStats, EmptyMomentsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, EmptyExtremaAreNaN) {
  // min/max/range of an empty population are undefined; the accumulator
  // reports quiet NaN rather than a fake 0.0 so that a missing count()
  // guard can never pass a threshold comparison by accident.
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.range()));
  // One sample makes them all well-defined again.
  s.add(-7.0);
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), -7.0);
  EXPECT_DOUBLE_EQ(s.range(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownPopulation) {
  // Population {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population stddev 2.
  RunningStats s = stats_of(std::vector<double>{2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.range(), 7.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s = stats_of(std::vector<double>{-3, -1, 1, 3});
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, IntVectorOverload) {
  RunningStats s = stats_of(std::vector<std::int64_t>{10, 20, 30});
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.range(), 20.0);
}

TEST(RunningStats, MatchesNaiveComputationOnRandomData) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  std::vector<double> values;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    s.add(v);
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  const double stddev = std::sqrt(sq / static_cast<double>(values.size()));
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.stddev(), stddev, 1e-9);
}

// --- Clockability criteria: the paper's 2.5 / 5 thresholds ----------------

TEST(ClockabilityCriteria, AcceptsIdenticalPaths) {
  ClockabilityCriteria c;
  RunningStats s = stats_of(std::vector<double>{100, 100, 100});
  EXPECT_TRUE(c.accepts(s));
}

TEST(ClockabilityCriteria, PaperExampleFromOpt3) {
  // Paper Sec. IV-C: paths {37, 38, 29}, mean 34.67 -> the paper quotes
  // mean 35.5 over four paths {37, 38, 38, 29}; range 9 < mean/2.5 and
  // stddev 4.36 < mean/5, so the region is clockable.
  ClockabilityCriteria c;
  RunningStats s = stats_of(std::vector<double>{37, 38, 38, 29});
  EXPECT_TRUE(c.accepts(s));
}

TEST(ClockabilityCriteria, RejectsWideRange) {
  // Range 60 > mean(70)/2.5 = 28.
  ClockabilityCriteria c;
  RunningStats s = stats_of(std::vector<double>{40, 100});
  EXPECT_FALSE(c.accepts(s));
}

TEST(ClockabilityCriteria, RejectsHighStddevEvenWithModestRange) {
  ClockabilityCriteria c;
  // mean = 100, range = 39 (just below 100/2.5 = 40), but half the paths at
  // each extreme: stddev = 19.5 only slightly below 20... push it over by
  // weighting: {80, 80, 119, 119, 119, 80} mean 99.5, stddev 19.5 < 19.9
  // accepted; use a custom divisor to make the stddev test the binding one.
  ClockabilityCriteria strict;
  strict.stddev_divisor = 10.0;  // reject stddev > mean/10
  RunningStats s = stats_of(std::vector<double>{80, 119, 80, 119});
  EXPECT_FALSE(strict.accepts(s));
  EXPECT_TRUE(c.accepts(s));  // default thresholds accept the same spread
}

TEST(ClockabilityCriteria, ZeroMeanAcceptsOnlyZeroSpread) {
  ClockabilityCriteria c;
  EXPECT_TRUE(c.accepts(stats_of(std::vector<double>{0, 0, 0})));
  EXPECT_FALSE(c.accepts(stats_of(std::vector<double>{0, 1})));
}

TEST(ClockabilityCriteria, RejectsEmpty) {
  ClockabilityCriteria c;
  EXPECT_FALSE(c.accepts(RunningStats{}));
}

TEST(ClockabilityCriteria, RawOverloadMatchesStatsOverload) {
  ClockabilityCriteria c;
  RunningStats s = stats_of(std::vector<double>{90, 100, 110});
  EXPECT_EQ(c.accepts(s), c.accepts(s.mean(), s.stddev(), s.range()));
}

}  // namespace
}  // namespace detlock
