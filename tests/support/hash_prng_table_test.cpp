#include <gtest/gtest.h>

#include <set>

#include "support/hash.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace detlock {
namespace {

TEST(Fnv1a, DeterministicAndOrderSensitive) {
  Fnv1aHasher a;
  a.update_u64(1);
  a.update_u64(2);
  Fnv1aHasher b;
  b.update_u64(2);
  b.update_u64(1);
  Fnv1aHasher c;
  c.update_u64(1);
  c.update_u64(2);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_EQ(a.digest(), c.digest());
}

TEST(Fnv1a, EmptyHasKnownOffsetBasis) {
  Fnv1aHasher h;
  EXPECT_EQ(h.digest(), 0xcbf29ce484222325ULL);
}

TEST(Fnv1a, StringAndBytesAgree) {
  Fnv1aHasher a;
  a.update_string("hi");
  Fnv1aHasher b;
  b.update_byte('h');
  b.update_byte('i');
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Fnv1a, SignedUnsignedRoundTrip) {
  Fnv1aHasher a;
  a.update_i64(-1);
  Fnv1aHasher b;
  b.update_u64(~std::uint64_t{0});
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Xoshiro, SameSeedSameSequence) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, BoundedValuesInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, ReasonableSpread) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) seen.insert(rng.next_below(1024));
  EXPECT_GT(seen.size(), 180u);  // mostly distinct
}

TEST(TextTable, AlignsColumnsAndRendersSections) {
  TextTable t;
  t.add_row({"name", "value"});
  t.add_rule();
  t.add_section("band");
  t.add_row({"longer-name", "7"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("== band"), std::string::npos);
  EXPECT_NE(out.find("longer-name | 7"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t;
  t.add_row({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace detlock
