// JsonWriter: the formatting contract every machine-readable report relies
// on (detlockc --json, detserve, bench gates) -- deterministic indentation,
// escaping, hex fingerprints, and the schema_version convention.
#include <gtest/gtest.h>

#include "support/json.hpp"

namespace detlock {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  JsonWriter o;
  o.begin_object();
  o.end();
  EXPECT_EQ(o.str(), "{}\n");  // str() terminates the document with '\n'

  JsonWriter a;
  a.begin_array();
  a.end();
  EXPECT_EQ(a.str(), "[]\n");
}

TEST(JsonWriterTest, DeterministicIndentAndOrdering) {
  JsonWriter w;
  w.begin_object();
  w.field("schema_version", kReportSchemaVersion);
  w.field("tool", "test");
  w.key("runs");
  w.begin_array();
  w.begin_object();
  w.field("run", 1);
  w.field("ok", true);
  w.end();
  w.end();
  w.end();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"schema_version\": 1,\n"
            "  \"tool\": \"test\",\n"
            "  \"runs\": [\n"
            "    {\n"
            "      \"run\": 1,\n"
            "      \"ok\": true\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriterTest, ScalarFormats) {
  JsonWriter w;
  w.begin_array();
  w.value(std::int64_t{-42});
  w.value(std::uint64_t{18446744073709551615ull});
  w.value(0.5);
  w.value(false);
  w.value_null();
  w.value_hex(0xdeadbeefull);
  w.end();
  EXPECT_EQ(w.str(),
            "[\n"
            "  -42,\n"
            "  18446744073709551615,\n"
            "  0.5,\n"
            "  false,\n"
            "  null,\n"
            "  \"00000000deadbeef\"\n"
            "]\n");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.field("msg", "line1\nline2\t\"quoted\" \\ \x01");
  w.end();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"msg\": \"line1\\nline2\\t\\\"quoted\\\" \\\\ \\u0001\"\n"
            "}\n");
}

TEST(JsonWriterTest, HexIsSixteenLowercaseDigits) {
  JsonWriter w;
  w.begin_object();
  w.field_hex("fingerprint", 0xABCDULL);
  w.end();
  EXPECT_NE(w.str().find("\"fingerprint\": \"000000000000abcd\""), std::string::npos);
}

}  // namespace
}  // namespace detlock
