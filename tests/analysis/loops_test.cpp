#include "analysis/loops.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"

namespace detlock::analysis {
namespace {

TEST(Loops, SimpleWhileLoop) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  br h
block h:
  condbr %0, b, x
block b:
  br h
block x:
  ret
}
)");
  const ir::Function& f = m.functions()[0];
  const Cfg cfg(f);
  const DominatorTree dom(cfg);
  const LoopInfo loops(cfg, dom);

  EXPECT_TRUE(loops.has_loops());
  ASSERT_EQ(loops.back_edges().size(), 1u);
  EXPECT_EQ(loops.back_edges()[0].from, f.find_block("b"));
  EXPECT_EQ(loops.back_edges()[0].to, f.find_block("h"));
  EXPECT_TRUE(loops.is_loop_header(f.find_block("h")));
  EXPECT_FALSE(loops.is_loop_header(f.find_block("b")));
  EXPECT_EQ(loops.loop_depth(f.find_block("h")), 1u);
  EXPECT_EQ(loops.loop_depth(f.find_block("b")), 1u);
  EXPECT_EQ(loops.loop_depth(f.find_block("x")), 0u);
  EXPECT_EQ(loops.loop_depth(0), 0u);
  EXPECT_TRUE(loops.is_back_edge(f.find_block("b"), f.find_block("h")));
  EXPECT_FALSE(loops.is_back_edge(f.find_block("h"), f.find_block("b")));
}

TEST(Loops, NestedLoopDepths) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  br oh
block oh:
  condbr %0, ih, x
block ih:
  condbr %0, ib, ol
block ib:
  br ih
block ol:
  br oh
block x:
  ret
}
)");
  const ir::Function& f = m.functions()[0];
  const Cfg cfg(f);
  const DominatorTree dom(cfg);
  const LoopInfo loops(cfg, dom);

  EXPECT_EQ(loops.back_edges().size(), 2u);
  EXPECT_EQ(loops.loop_depth(f.find_block("oh")), 1u);
  EXPECT_EQ(loops.loop_depth(f.find_block("ih")), 2u);
  EXPECT_EQ(loops.loop_depth(f.find_block("ib")), 2u);
  EXPECT_EQ(loops.loop_depth(f.find_block("ol")), 1u);
  EXPECT_EQ(loops.loop_depth(f.find_block("x")), 0u);
}

TEST(Loops, SelfLoop) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  br s
block s:
  condbr %0, s, x
block x:
  ret
}
)");
  const ir::Function& f = m.functions()[0];
  const Cfg cfg(f);
  const DominatorTree dom(cfg);
  const LoopInfo loops(cfg, dom);
  const ir::BlockId s = f.find_block("s");
  ASSERT_EQ(loops.back_edges().size(), 1u);
  EXPECT_EQ(loops.back_edges()[0].from, s);
  EXPECT_EQ(loops.back_edges()[0].to, s);
  EXPECT_EQ(loops.loop_depth(s), 1u);
}

TEST(Loops, TwoLatchesOneHeaderIsOneLoop) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  br h
block h:
  condbr %0, a, x
block a:
  condbr %0, l1, l2
block l1:
  br h
block l2:
  br h
block x:
  ret
}
)");
  const ir::Function& f = m.functions()[0];
  const Cfg cfg(f);
  const DominatorTree dom(cfg);
  const LoopInfo loops(cfg, dom);
  EXPECT_EQ(loops.back_edges().size(), 2u);
  // Shared header: depth must still be 1, not 2.
  EXPECT_EQ(loops.loop_depth(f.find_block("h")), 1u);
  EXPECT_EQ(loops.loop_depth(f.find_block("a")), 1u);
}

TEST(Loops, AcyclicHasNoLoops) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  condbr %0, t, e
block t:
  br x
block e:
  br x
block x:
  ret
}
)");
  const Cfg cfg(m.functions()[0]);
  const DominatorTree dom(cfg);
  const LoopInfo loops(cfg, dom);
  EXPECT_FALSE(loops.has_loops());
  EXPECT_TRUE(loops.back_edges().empty());
}

}  // namespace
}  // namespace detlock::analysis
