// Path-statistics DP: validated against brute-force path enumeration on
// small CFGs, plus edge cases (cycles, exits, exponential path counts).
#include "analysis/paths.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ir/parser.hpp"

namespace detlock::analysis {
namespace {

/// Brute-force enumeration matching region_path_stats' documented
/// semantics, for cross-checking the DP.
struct BruteForce {
  const Cfg& cfg;
  const std::vector<bool>& in_region;
  const BlockCostFn& cost;
  std::vector<double> totals;

  void walk(BlockId b, double acc) {
    acc += static_cast<double>(cost(b));
    std::size_t in = 0;
    std::size_t out = 0;
    for (BlockId s : cfg.successors(b)) {
      if (in_region[s]) {
        ++in;
        walk(s, acc);
      } else {
        ++out;
      }
    }
    if (cfg.successors(b).empty()) out = 1;
    for (std::size_t i = 0; i < out; ++i) totals.push_back(acc);
  }
};

void expect_matches_bruteforce(const ir::Function& f, const std::vector<bool>& in_region, BlockId start,
                               const BlockCostFn& cost) {
  const Cfg cfg(f);
  const PathStatsResult dp = region_path_stats(cfg, start, in_region, cost);
  BruteForce bf{cfg, in_region, cost, {}};
  bf.walk(start, 0.0);
  ASSERT_TRUE(dp.valid);
  ASSERT_EQ(static_cast<std::size_t>(dp.count), bf.totals.size());
  double sum = 0.0;
  double mn = bf.totals[0];
  double mx = bf.totals[0];
  for (double t : bf.totals) {
    sum += t;
    mn = std::min(mn, t);
    mx = std::max(mx, t);
  }
  const double mean = sum / static_cast<double>(bf.totals.size());
  double sq = 0.0;
  for (double t : bf.totals) sq += (t - mean) * (t - mean);
  const double stddev = std::sqrt(sq / static_cast<double>(bf.totals.size()));
  EXPECT_NEAR(dp.mean, mean, 1e-9);
  EXPECT_NEAR(dp.stddev, stddev, 1e-9);
  EXPECT_DOUBLE_EQ(dp.min, mn);
  EXPECT_DOUBLE_EQ(dp.max, mx);
}

BlockCostFn index_cost() {
  return [](BlockId b) { return static_cast<std::int64_t>(b + 1) * 10; };
}

TEST(Paths, StraightLine) {
  const ir::Module m = ir::parse_module(R"(
func @f(0) {
block entry:
  br a
block a:
  br b
block b:
  ret
}
)");
  const Cfg cfg(m.functions()[0]);
  const PathStatsResult r = function_path_stats(cfg, index_cost());
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.count, 1.0);
  EXPECT_DOUBLE_EQ(r.mean, 10 + 20 + 30);
  EXPECT_DOUBLE_EQ(r.range(), 0.0);
}

TEST(Paths, DiamondTwoPaths) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  condbr %0, t, e
block t:
  br mg
block e:
  br mg
block mg:
  ret
}
)");
  const Cfg cfg(m.functions()[0]);
  const PathStatsResult r = function_path_stats(cfg, index_cost());
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.count, 2.0);
  // Paths: entry(10)+t(20)+mg(40)=70 and entry+e(30)+mg=80.
  EXPECT_DOUBLE_EQ(r.min, 70.0);
  EXPECT_DOUBLE_EQ(r.max, 80.0);
  EXPECT_DOUBLE_EQ(r.mean, 75.0);
}

TEST(Paths, MultipleRets) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  condbr %0, t, e
block t:
  ret
block e:
  ret
}
)");
  const Cfg cfg(m.functions()[0]);
  const PathStatsResult r = function_path_stats(cfg, index_cost());
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.count, 2.0);
}

TEST(Paths, CyclicFunctionInvalid) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  br h
block h:
  condbr %0, h, x
block x:
  ret
}
)");
  const Cfg cfg(m.functions()[0]);
  EXPECT_FALSE(function_path_stats(cfg, index_cost()).valid);
}

TEST(Paths, RegionWithExitEdges) {
  // Region = {entry, mid}; mid exits to out (not in region): the path
  // terminates at mid, charging only region blocks.
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  br mid
block mid:
  condbr %0, entry2, out
block entry2:
  ret
block out:
  ret
}
)");
  const ir::Function& f = m.functions()[0];
  std::vector<bool> in_region(f.num_blocks(), false);
  in_region[f.find_block("entry")] = true;
  in_region[f.find_block("mid")] = true;
  const Cfg cfg(f);
  const PathStatsResult r = region_path_stats(cfg, 0, in_region, index_cost());
  ASSERT_TRUE(r.valid);
  // Two exiting edges from mid -> two truncated paths, both 10+20.
  EXPECT_DOUBLE_EQ(r.count, 2.0);
  EXPECT_DOUBLE_EQ(r.mean, 30.0);
  EXPECT_DOUBLE_EQ(r.range(), 0.0);
}

TEST(Paths, EdgeBackIntoStartRejected) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  br h
block h:
  condbr %0, b, x
block b:
  br h
block x:
  ret
}
)");
  const ir::Function& f = m.functions()[0];
  std::vector<bool> in_region(f.num_blocks(), true);
  const Cfg cfg(f);
  // Starting at the loop header with its latch in the region: cycle.
  EXPECT_FALSE(region_path_stats(cfg, f.find_block("h"), in_region, index_cost()).valid);
}

TEST(Paths, MatchesBruteForceOnNestedDiamonds) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  condbr %0, a, b
block a:
  condbr %0, a1, a2
block a1:
  br am
block a2:
  br am
block am:
  br mg
block b:
  br mg
block mg:
  condbr %0, x1, x2
block x1:
  ret
block x2:
  ret
}
)");
  const ir::Function& f = m.functions()[0];
  std::vector<bool> in_region(f.num_blocks(), true);
  expect_matches_bruteforce(f, in_region, 0, index_cost());
}

TEST(Paths, ExponentialPathCountStaysExact) {
  // 20 sequential diamonds -> 2^20 paths; the DP must report the exact
  // count without enumeration.
  std::string text = "func @f(1) {\nblock entry:\n  br c0\n";
  for (int i = 0; i < 20; ++i) {
    const std::string c = "c" + std::to_string(i);
    const std::string n = i == 19 ? "end" : "c" + std::to_string(i + 1);
    text += "block " + c + ":\n  condbr %0, " + c + "t, " + c + "e\n";
    text += "block " + c + "t:\n  br " + n + "\n";
    text += "block " + c + "e:\n  br " + n + "\n";
  }
  text += "block end:\n  ret\n}\n";
  const ir::Module m = ir::parse_module(text);
  const Cfg cfg(m.functions()[0]);
  const PathStatsResult r = function_path_stats(cfg, [](BlockId) { return 1; });
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.count, static_cast<double>(1 << 20));
  // Every path has identical cost (all blocks cost 1, same length).
  EXPECT_DOUBLE_EQ(r.range(), 0.0);
  EXPECT_NEAR(r.stddev, 0.0, 1e-6);
}

TEST(Paths, StartOutsideRegionInvalid) {
  const ir::Module m = ir::parse_module("func @f(0) {\nblock entry:\n  ret\n}\n");
  const Cfg cfg(m.functions()[0]);
  std::vector<bool> in_region(1, false);
  EXPECT_FALSE(region_path_stats(cfg, 0, in_region, index_cost()).valid);
}

}  // namespace
}  // namespace detlock::analysis
