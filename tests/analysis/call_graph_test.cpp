#include "analysis/call_graph.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"

namespace detlock::analysis {
namespace {

TEST(CallGraph, LeafAndCallerRelations) {
  const ir::Module m = ir::parse_module(R"(
func @leaf(0) {
block entry:
  %0 = const 1
  ret %0
}
func @mid(0) {
block entry:
  %0 = call @leaf()
  %1 = call @leaf()
  ret %1
}
func @top(0) {
block entry:
  %0 = call @mid()
  ret %0
}
)");
  const CallGraph cg(m);
  const ir::FuncId leaf = m.find_function("leaf");
  const ir::FuncId mid = m.find_function("mid");
  const ir::FuncId top = m.find_function("top");

  EXPECT_TRUE(cg.is_leaf(leaf));
  EXPECT_FALSE(cg.is_leaf(mid));
  // Duplicate calls deduped.
  EXPECT_EQ(cg.callees(mid).size(), 1u);
  EXPECT_EQ(cg.callers(leaf).size(), 1u);
  EXPECT_EQ(cg.callers(top).size(), 0u);
  EXPECT_FALSE(cg.is_recursive(leaf));
  EXPECT_FALSE(cg.has_sync_ops(leaf));
}

TEST(CallGraph, DirectRecursion) {
  const ir::Module m = ir::parse_module(R"(
func @r(1) {
block entry:
  %1 = call @r(%0)
  ret %1
}
)");
  const CallGraph cg(m);
  EXPECT_TRUE(cg.is_recursive(0));
}

TEST(CallGraph, MutualRecursion) {
  const ir::Module m = ir::parse_module(R"(
func @a(0) {
block entry:
  %0 = call @b()
  ret %0
}
func @b(0) {
block entry:
  %0 = call @a()
  ret %0
}
func @c(0) {
block entry:
  %0 = call @a()
  ret %0
}
)");
  const CallGraph cg(m);
  EXPECT_TRUE(cg.is_recursive(m.find_function("a")));
  EXPECT_TRUE(cg.is_recursive(m.find_function("b")));
  EXPECT_FALSE(cg.is_recursive(m.find_function("c")));
}

TEST(CallGraph, SyncOpsDetected) {
  const ir::Module m = ir::parse_module(R"(
func @locker(0) {
block entry:
  %0 = const 0
  lock %0
  unlock %0
  ret
}
func @spawner(0) {
block entry:
  %0 = spawn @locker()
  join %0
  ret
}
func @pure(0) {
block entry:
  ret
}
)");
  const CallGraph cg(m);
  EXPECT_TRUE(cg.has_sync_ops(m.find_function("locker")));
  EXPECT_TRUE(cg.has_sync_ops(m.find_function("spawner")));
  EXPECT_FALSE(cg.has_sync_ops(m.find_function("pure")));
  // spawn counts as a call edge.
  EXPECT_EQ(cg.callees(m.find_function("spawner")).size(), 1u);
}

TEST(CallGraph, ExternCalleesTracked) {
  const ir::Module m = ir::parse_module(R"(
extern @sin(1) -> value estimate base=45

func @f(1) {
block entry:
  %1 = callx @sin(%0)
  %2 = callx @sin(%1)
  ret %2
}
)");
  const CallGraph cg(m);
  EXPECT_EQ(cg.extern_callees(0).size(), 1u);
  EXPECT_TRUE(cg.is_leaf(0));  // extern calls do not break leaf-ness
}

}  // namespace
}  // namespace detlock::analysis
