#include <gtest/gtest.h>

#include "analysis/dominators.hpp"
#include "ir/parser.hpp"

namespace detlock::analysis {
namespace {

// Diamond: entry -> {t, e} -> m -> ret
const char* kDiamond = R"(
func @f(1) {
block entry:
  condbr %0, t, e
block t:
  br m
block e:
  br m
block m:
  ret
}
)";

// Loop: entry -> h; h -> {b, x}; b -> h
const char* kLoop = R"(
func @f(1) {
block entry:
  br h
block h:
  condbr %0, b, x
block b:
  br h
block x:
  ret
}
)";

TEST(Cfg, DiamondEdges) {
  const ir::Module m = ir::parse_module(kDiamond);
  const Cfg cfg(m.functions()[0]);
  EXPECT_EQ(cfg.successors(0).size(), 2u);
  EXPECT_EQ(cfg.predecessors(3).size(), 2u);
  EXPECT_EQ(cfg.predecessors(0).size(), 0u);
  for (BlockId b = 0; b < 4; ++b) EXPECT_TRUE(cfg.reachable(b));
}

TEST(Cfg, RpoStartsAtEntryAndCoversReachable) {
  const ir::Module m = ir::parse_module(kDiamond);
  const Cfg cfg(m.functions()[0]);
  ASSERT_EQ(cfg.rpo().size(), 4u);
  EXPECT_EQ(cfg.rpo().front(), 0u);
  // Merge block last in RPO for a diamond.
  EXPECT_EQ(cfg.rpo().back(), 3u);
}

TEST(Cfg, UnreachableBlockExcluded) {
  const ir::Module m = ir::parse_module(R"(
func @f(0) {
block entry:
  ret
block dead:
  br dead
}
)");
  const Cfg cfg(m.functions()[0]);
  EXPECT_TRUE(cfg.reachable(0));
  EXPECT_FALSE(cfg.reachable(1));
  EXPECT_EQ(cfg.rpo().size(), 1u);
}

TEST(Cfg, DedupesParallelEdges) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  condbr %0, next, next
block next:
  ret
}
)");
  const Cfg cfg(m.functions()[0]);
  EXPECT_EQ(cfg.successors(0).size(), 1u);
  EXPECT_EQ(cfg.predecessors(1).size(), 1u);
}

TEST(Dominators, DiamondDominance) {
  const ir::Module m = ir::parse_module(kDiamond);
  const Cfg cfg(m.functions()[0]);
  const DominatorTree dom(cfg);
  // entry dominates everything.
  for (BlockId b = 0; b < 4; ++b) EXPECT_TRUE(dom.dominates(0, b));
  // Neither arm dominates the merge.
  EXPECT_FALSE(dom.dominates(1, 3));
  EXPECT_FALSE(dom.dominates(2, 3));
  // idom of merge is entry.
  EXPECT_EQ(dom.idom(3), 0u);
  // Reflexive.
  EXPECT_TRUE(dom.dominates(1, 1));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  const ir::Module m = ir::parse_module(kLoop);
  const Cfg cfg(m.functions()[0]);
  const DominatorTree dom(cfg);
  const ir::BlockId h = m.functions()[0].find_block("h");
  const ir::BlockId b = m.functions()[0].find_block("b");
  const ir::BlockId x = m.functions()[0].find_block("x");
  EXPECT_TRUE(dom.dominates(h, b));
  EXPECT_TRUE(dom.dominates(h, x));
  EXPECT_FALSE(dom.dominates(b, h));
}

TEST(Dominators, NestedDiamonds) {
  const ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  condbr %0, a, b
block a:
  condbr %0, a1, a2
block a1:
  br am
block a2:
  br am
block am:
  br m
block b:
  br m
block m:
  ret
}
)");
  const ir::Function& f = m.functions()[0];
  const Cfg cfg(f);
  const DominatorTree dom(cfg);
  const auto blk = [&](const char* n) { return f.find_block(n); };
  EXPECT_TRUE(dom.dominates(blk("a"), blk("am")));
  EXPECT_TRUE(dom.dominates(blk("a"), blk("a1")));
  EXPECT_FALSE(dom.dominates(blk("a"), blk("m")));
  EXPECT_EQ(dom.idom(blk("am")), blk("a"));
  EXPECT_EQ(dom.idom(blk("m")), 0u);
}

TEST(Dominators, UnreachableBlocksNotDominated) {
  const ir::Module m = ir::parse_module(R"(
func @f(0) {
block entry:
  ret
block dead:
  ret
}
)");
  const Cfg cfg(m.functions()[0]);
  const DominatorTree dom(cfg);
  EXPECT_FALSE(dom.dominates(0, 1));
  EXPECT_EQ(dom.idom(1), ir::kInvalidBlock);
}

TEST(Dominators, ChildrenListsMatchIdoms) {
  const ir::Module m = ir::parse_module(kDiamond);
  const Cfg cfg(m.functions()[0]);
  const DominatorTree dom(cfg);
  const auto& kids = dom.children(0);
  EXPECT_EQ(kids.size(), 3u);  // t, e, m all idom'ed by entry
}

}  // namespace
}  // namespace detlock::analysis
