// Unit tests for the template JIT (interp/jit/): compilation gates, the
// graceful decoded fallback, guest-error paths in generated code, the
// native-recursion depth guard, and the typed PreparedFor guard on shared
// decoded modules.  Cross-engine byte-identity over the full workload
// matrix lives in decoded_equivalence_test.cpp; this file covers what the
// sweep can't see.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "interp/engine.hpp"
#include "interp/jit/jit.hpp"
#include "ir/parser.hpp"
#include "support/error.hpp"

namespace detlock::interp {
namespace {

constexpr const char* kFib = R"(
func @fib(1) regs=16 {
block entry:
  %1 = const 2
  %2 = icmp lt %0, %1
  condbr %2, base, rec
block base:
  ret %0
block rec:
  %3 = const 1
  %4 = sub %0, %3
  %5 = call @fib(%4)
  %6 = const 2
  %7 = sub %0, %6
  %8 = call @fib(%7)
  %9 = add %5, %8
  ret %9
}
func @main(0) regs=8 {
block entry:
  %0 = const 15
  %1 = call @fib(%0)
  ret %1
}
)";

struct Outcome {
  std::int64_t result = 0;
  std::uint64_t instructions = 0;
  std::uint64_t memory = 0;
  bool threw = false;
  std::string error;
};

Outcome run_with(const ir::Module& module, EngineKind kind, bool* jit_active = nullptr) {
  EngineConfig config;
  config.engine = kind;
  config.memory_words = 1 << 14;
  Engine engine(module, config);
  if (jit_active != nullptr) *jit_active = engine.jit_active();
  Outcome out;
  try {
    const RunResult r = engine.run("main");
    out.result = r.main_return;
    out.instructions = r.instructions;
    out.memory = r.memory_fingerprint;
  } catch (const Error& e) {
    out.threw = true;
    out.error = e.what();
  }
  return out;
}

// The equivalence sweep is only meaningful if kJit actually runs native
// code on the platforms CI tests on; pin that down here.  (The decoded
// fallback keeps results identical either way, so without this assertion a
// silently-dead JIT would pass every other test.)
TEST(JitTest, CompilesRealCodeOnX86_64) {
  const ir::Module module = ir::parse_module(kFib);
  const DecodedModule decoded = decode_module(module);
  const auto jit = jit::compile_module(decoded);
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
  const char* kill = std::getenv("DETLOCK_JIT_DISABLE");
  if (kill == nullptr || kill[0] == '\0' || kill[0] == '0') {
    ASSERT_NE(jit, nullptr) << "template JIT failed to compile on a supported host";
    EXPECT_EQ(jit->decoded(), &decoded);
    EXPECT_TRUE(jit->has_function(module.find_function("fib")));
    EXPECT_GT(jit->code_bytes(), 0u);
    EXPECT_GT(jit->depth_limit(), 64u);
  }
#else
  EXPECT_EQ(jit, nullptr) << "unsupported host must take the decoded fallback";
#endif
}

TEST(JitTest, RecursionMatchesDecodedExactly) {
  const ir::Module module = ir::parse_module(kFib);
  const Outcome decoded = run_with(module, EngineKind::kDecoded);
  const Outcome jit = run_with(module, EngineKind::kJit);
  ASSERT_FALSE(decoded.threw) << decoded.error;
  ASSERT_FALSE(jit.threw) << jit.error;
  EXPECT_EQ(jit.result, decoded.result);
  EXPECT_EQ(jit.result, 610);  // fib(15)
  EXPECT_EQ(jit.instructions, decoded.instructions);
  EXPECT_EQ(jit.memory, decoded.memory);
}

// DETLOCK_JIT_DISABLE is the documented kill-switch (docs/
// interp-performance.md): --interp=jit must degrade to the decoded engine,
// not fail, and still produce identical results.
TEST(JitTest, KillSwitchFallsBackToDecoded) {
  ::setenv("DETLOCK_JIT_DISABLE", "1", 1);
  const ir::Module module = ir::parse_module(kFib);
  bool active = true;
  const Outcome jit = run_with(module, EngineKind::kJit, &active);
  ::unsetenv("DETLOCK_JIT_DISABLE");
  EXPECT_FALSE(active);
  ASSERT_FALSE(jit.threw) << jit.error;
  EXPECT_EQ(jit.result, 610);
  const Outcome decoded = run_with(module, EngineKind::kDecoded);
  EXPECT_EQ(jit.instructions, decoded.instructions);
}

// Functions wider than the uniform call protocol's argument block make the
// whole module uncompilable -- by contract the caller falls back rather
// than miscompiling.
TEST(JitTest, TooManyParamsRefusesToCompile) {
  std::string text = "func @wide(" + std::to_string(jit::kJitMaxArgs + 1) +
                     ") regs=" + std::to_string(jit::kJitMaxArgs + 8) + " {\nblock entry:\n  ret %0\n}\n";
  text += "func @main(0) regs=4 {\nblock entry:\n  %0 = const 7\n  ret %0\n}\n";
  const ir::Module module = ir::parse_module(text);
  const DecodedModule decoded = decode_module(module);
  EXPECT_EQ(jit::compile_module(decoded), nullptr);
  bool active = true;
  const Outcome out = run_with(module, EngineKind::kJit, &active);
  EXPECT_FALSE(active);
  ASSERT_FALSE(out.threw) << out.error;
  EXPECT_EQ(out.result, 7);
}

// Native frames live on the OS thread stack: runaway recursion must become
// a clean guest error under the JIT (the interpreters' heap arena just
// grows, so this is a documented, intentional divergence).
TEST(JitTest, DeepRecursionRaisesDepthLimit) {
  constexpr const char* kDeep = R"(
func @deep(1) regs=8 {
block entry:
  %1 = const 0
  %2 = icmp eq %0, %1
  condbr %2, base, rec
block base:
  ret %0
block rec:
  %3 = const 1
  %4 = sub %0, %3
  %5 = call @deep(%4)
  ret %5
}
func @main(0) regs=4 {
block entry:
  %0 = const 100000
  %1 = call @deep(%0)
  ret %1
}
)";
  const ir::Module module = ir::parse_module(kDeep);
  bool active = false;
  const Outcome jit = run_with(module, EngineKind::kJit, &active);
  if (!active) GTEST_SKIP() << "decoded fallback in effect; no native depth bound";
  ASSERT_TRUE(jit.threw);
  EXPECT_NE(jit.error.find("call depth limit"), std::string::npos) << jit.error;
  // The decoded engine completes the same program (arena frames).
  const Outcome decoded = run_with(module, EngineKind::kDecoded);
  ASSERT_FALSE(decoded.threw) << decoded.error;
  EXPECT_EQ(decoded.result, 0);
}

// Guest-error cold paths in generated code: division by zero and an
// out-of-bounds store must raise clean errors, same as the interpreters.
TEST(JitTest, GuestErrorsRaiseCleanly) {
  constexpr const char* kDivZero = R"(
func @main(0) regs=8 {
block entry:
  %0 = const 10
  %1 = const 0
  %2 = div %0, %1
  ret %2
}
)";
  constexpr const char* kOob = R"(
func @main(0) regs=8 {
block entry:
  %0 = const 123456789
  %1 = const 1
  store %0, %1
  ret %1
}
)";
  for (const char* text : {kDivZero, kOob}) {
    const ir::Module module = ir::parse_module(text);
    const Outcome jit = run_with(module, EngineKind::kJit);
    const Outcome decoded = run_with(module, EngineKind::kDecoded);
    EXPECT_TRUE(jit.threw) << text;
    EXPECT_TRUE(decoded.threw) << text;
  }
}

// kSwitch goes through the dispatch-table path in generated code; sweep a
// few values across hit/miss/default cases against the decoded engine.
TEST(JitTest, SwitchDispatchMatchesDecoded) {
  constexpr const char* kSwitch = R"(
func @classify(1) regs=8 {
block entry:
  switch %0, other [0: zero, 3: three, 7: seven]
block zero:
  %1 = const 100
  ret %1
block three:
  %2 = const 300
  ret %2
block seven:
  %3 = const 700
  ret %3
block other:
  %4 = const -1
  ret %4
}
func @main(0) regs=16 {
block entry:
  %0 = const 0
  %1 = call @classify(%0)
  %2 = const 3
  %3 = call @classify(%2)
  %4 = const 7
  %5 = call @classify(%4)
  %6 = const 5
  %7 = call @classify(%6)
  %8 = add %1, %3
  %9 = add %8, %5
  %10 = add %9, %7
  ret %10
}
)";
  const ir::Module module = ir::parse_module(kSwitch);
  const Outcome jit = run_with(module, EngineKind::kJit);
  const Outcome decoded = run_with(module, EngineKind::kDecoded);
  ASSERT_FALSE(jit.threw) << jit.error;
  EXPECT_EQ(jit.result, decoded.result);
  EXPECT_EQ(jit.result, 100 + 300 + 700 - 1);
  EXPECT_EQ(jit.instructions, decoded.instructions);
}

// --- PreparedFor: the typed guard on shared decoded modules -------------

TEST(PreparedForGuard, FreshDecodeIsNotExecutableAsShared) {
  const ir::Module module = ir::parse_module(kFib);
  const DecodedModule decoded = decode_module(module);
  EXPECT_EQ(decoded.prepared_for, PreparedFor::kUnresolved);
  EXPECT_FALSE(decoded_handlers_resolved(decoded));
}

TEST(PreparedForGuard, PreparedModuleIsExecutableAsShared) {
  const ir::Module module = ir::parse_module(kFib);
  DecodedModule decoded = decode_module(module);
  Engine::prepare_decoded_module(module, decoded);
  EXPECT_EQ(decoded.prepared_for, PreparedFor::kPlainDispatch);
  EXPECT_TRUE(decoded_handlers_resolved(decoded));

  EngineConfig config;
  config.engine = EngineKind::kDecoded;
  config.memory_words = 1 << 12;
  config.shared_decoded = &decoded;
  Engine engine(module, config);
  EXPECT_EQ(engine.run("main").main_return, 610);
}

// The hole the tag closes: before, a shared module that was never finalized
// passed the run() guard in switch-dispatch builds (and only tripped a null
// handler in computed-goto builds); now every build rejects it up front.
TEST(PreparedForGuard, UnpreparedSharedModuleIsRejectedAtRun) {
  const ir::Module module = ir::parse_module(kFib);
  DecodedModule decoded = decode_module(module);  // deliberately not prepared
  EngineConfig config;
  config.engine = EngineKind::kDecoded;
  config.memory_words = 1 << 12;
  config.shared_decoded = &decoded;
  Engine engine(module, config);
  try {
    engine.run("main");
    FAIL() << "run() accepted an unfinalized shared module";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("prepare_decoded_module"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace detlock::interp
