// Systematic opcode semantics: a parameterized table of one-function
// programs with expected results, covering every arithmetic/compare/convert
// opcode including signedness and boundary behaviour.
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "ir/parser.hpp"

namespace detlock::interp {
namespace {

struct Case {
  const char* name;
  const char* body;  // receives %0, %1; must `ret` something
  std::int64_t a;
  std::int64_t b;
  std::int64_t expected;
};

class OpcodeSemantics : public ::testing::TestWithParam<Case> {};

TEST_P(OpcodeSemantics, Evaluates) {
  const Case& c = GetParam();
  const std::string text = std::string("func @main(2) regs=32 {\nblock entry:\n") + c.body + "\n}\n";
  const ir::Module m = ir::parse_module(text);
  EngineConfig config;
  config.memory_words = 1 << 12;
  Engine engine(m, config);
  EXPECT_EQ(engine.run("main", {c.a, c.b}).main_return, c.expected) << c.name;
}

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

const Case kCases[] = {
    {"add", "  %2 = add %0, %1\n  ret %2", 40, 2, 42},
    {"add_negative", "  %2 = add %0, %1\n  ret %2", -40, 2, -38},
    {"sub", "  %2 = sub %0, %1\n  ret %2", 10, 25, -15},
    {"mul", "  %2 = mul %0, %1\n  ret %2", -6, 7, -42},
    {"div_trunc_toward_zero", "  %2 = div %0, %1\n  ret %2", -7, 2, -3},
    {"div_exact", "  %2 = div %0, %1\n  ret %2", 42, 6, 7},
    {"rem_sign_follows_dividend", "  %2 = rem %0, %1\n  ret %2", -7, 3, -1},
    {"rem_positive", "  %2 = rem %0, %1\n  ret %2", 7, -3, 1},
    {"and", "  %2 = and %0, %1\n  ret %2", 0b1100, 0b1010, 0b1000},
    {"or", "  %2 = or %0, %1\n  ret %2", 0b1100, 0b1010, 0b1110},
    {"xor", "  %2 = xor %0, %1\n  ret %2", 0b1100, 0b1010, 0b0110},
    {"shl", "  %2 = shl %0, %1\n  ret %2", 3, 4, 48},
    {"shl_count_masked_to_6_bits", "  %2 = shl %0, %1\n  ret %2", 1, 64, 1},
    {"shr_arithmetic", "  %2 = shr %0, %1\n  ret %2", -16, 2, -4},
    {"shr_positive", "  %2 = shr %0, %1\n  ret %2", 16, 2, 4},
    {"icmp_lt_true", "  %2 = icmp lt %0, %1\n  ret %2", -5, 3, 1},
    {"icmp_lt_false", "  %2 = icmp lt %0, %1\n  ret %2", 3, -5, 0},
    {"icmp_le_equal", "  %2 = icmp le %0, %1\n  ret %2", 4, 4, 1},
    {"icmp_eq", "  %2 = icmp eq %0, %1\n  ret %2", kMin, kMin, 1},
    {"icmp_ne", "  %2 = icmp ne %0, %1\n  ret %2", 1, 2, 1},
    {"icmp_gt_signed", "  %2 = icmp gt %0, %1\n  ret %2", 1, -1, 1},
    {"icmp_ge", "  %2 = icmp ge %0, %1\n  ret %2", -1, -1, 1},
    {"mov", "  %2 = mov %0\n  ret %2", 123, 0, 123},
    {"itof_ftoi_roundtrip", "  %2 = itof %0\n  %3 = ftoi %2\n  ret %3", -123456, 0, -123456},
    {"ftoi_truncates",
     "  %2 = itof %0\n  %3 = itof %1\n  %4 = fdiv %2, %3\n  %5 = ftoi %4\n  ret %5", 7, 2, 3},
    {"fadd_fsub",
     "  %2 = itof %0\n  %3 = itof %1\n  %4 = fadd %2, %3\n  %5 = fsub %4, %3\n  %6 = ftoi %5\n  ret %6",
     41, 17, 41},
    {"fmul",
     "  %2 = itof %0\n  %3 = itof %1\n  %4 = fmul %2, %3\n  %5 = ftoi %4\n  ret %5", 6, 7, 42},
    {"fsqrt",
     "  %2 = itof %0\n  %3 = fsqrt %2\n  %4 = ftoi %3\n  ret %4", 144, 0, 12},
    {"fcmp_lt",
     "  %2 = itof %0\n  %3 = itof %1\n  %4 = fcmp lt %2, %3\n  ret %4", 1, 2, 1},
    {"fcmp_ge_false",
     "  %2 = itof %0\n  %3 = itof %1\n  %4 = fcmp ge %2, %3\n  ret %4", 1, 2, 0},
    {"store_load_offsets",
     "  %2 = const 100\n  store %2 + 5, %0\n  store %2, %1\n  %3 = load %2 + 5\n  %4 = load %2\n"
     "  %5 = sub %3, %4\n  ret %5",
     50, 8, 42},
    {"condbr_taken",
     "  %2 = icmp lt %0, %1\n  condbr %2, t, e\nblock t:\n  %3 = const 1\n  ret %3\nblock e:\n"
     "  %4 = const 2\n  ret %4",
     1, 2, 1},
    {"condbr_not_taken",
     "  %2 = icmp lt %0, %1\n  condbr %2, t, e\nblock t:\n  %3 = const 1\n  ret %3\nblock e:\n"
     "  %4 = const 2\n  ret %4",
     2, 1, 2},
    {"ret_void_returns_zero", "  %2 = add %0, %1\n  ret", 1, 2, 0},
};

INSTANTIATE_TEST_SUITE_P(Table, OpcodeSemantics, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<Case>& info) { return info.param.name; });

}  // namespace
}  // namespace detlock::interp
