// Condition variables through the full engine (IR -> pass -> det runtime).
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "pass/pipeline.hpp"

namespace detlock::interp {
namespace {

// Two-slot handoff: child produces 30 tokens, main consumes; not-full /
// not-empty condvars guarded by mutex 0.
const char* kHandoff = R"(
func @producer(0) regs=24 {
block entry:
  %0 = const 0
  %1 = const 30
  %20 = const 0
  %21 = const 1
  br loop
block loop:
  %2 = icmp lt %0, %1
  condbr %2, produce, done
block produce:
  lock %20
  br check
block check:
  %3 = const 8
  %4 = load %3
  condbr %4, full, fill
block full:
  condwait %20, %20
  br check
block fill:
  %5 = const 9
  store %5, %0
  %6 = const 8
  %7 = const 1
  store %6, %7
  condsignal %21
  unlock %20
  %0 = add %0, %7
  br loop
block done:
  ret
}
func @main(0) regs=24 {
block entry:
  %20 = const 0
  %21 = const 1
  %0 = spawn @producer()
  %1 = const 0
  %2 = const 0
  %3 = const 30
  br loop
block loop:
  %4 = icmp lt %2, %3
  condbr %4, consume, done
block consume:
  lock %20
  br check
block check:
  %5 = const 8
  %6 = load %5
  condbr %6, take, empty
block empty:
  condwait %21, %20
  br check
block take:
  %7 = const 9
  %8 = load %7
  %1 = add %1, %8
  %9 = const 0
  %10 = const 8
  store %10, %9
  condsignal %20
  unlock %20
  %11 = const 1
  %2 = add %2, %11
  br loop
block done:
  join %0
  ret %1
}
)";

TEST(EngineCondVar, HandoffComputesSumAndIsDeterministic) {
  auto run = [](bool deterministic, const pass::PassOptions& options) {
    ir::Module m = ir::parse_module(kHandoff);
    pass::instrument_module(m, options);
    EngineConfig config;
    config.deterministic = deterministic;
    Engine engine(m, config);
    const RunResult r = engine.run("main");
    return std::make_tuple(r.main_return, r.trace_fingerprint, r.final_clocks);
  };
  // sum 0..29 = 435 regardless of backend or optimization level.
  for (const bool det : {false, true}) {
    EXPECT_EQ(std::get<0>(run(det, pass::PassOptions::none())), 435);
  }
  const auto a = run(true, pass::PassOptions::all());
  const auto b = run(true, pass::PassOptions::all());
  const auto c = run(true, pass::PassOptions::all());
  EXPECT_EQ(std::get<0>(a), 435);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(EngineCondVar, CondWaitWithoutMutexIsRuntimeError) {
  const ir::Module m = ir::parse_module(R"(
func @main(0) {
block entry:
  %0 = const 0
  condwait %0, %0
  ret
}
)");
  Engine engine(m, {});
  EXPECT_THROW(engine.run("main"), Error);
}

TEST(EngineCondVar, RoundTripsThroughParserAndPrinter) {
  const ir::Module m = ir::parse_module(kHandoff);
  const std::string text = ir::to_string(m);
  EXPECT_NE(text.find("condwait %20, %20"), std::string::npos);
  EXPECT_NE(text.find("condsignal %21"), std::string::npos);
  const ir::Module reparsed = ir::parse_module(text);
  EXPECT_EQ(ir::to_string(reparsed), text);
}

}  // namespace
}  // namespace detlock::interp
