// Differential suite: every execution engine must be observationally
// identical to every other -- equal memory and trace fingerprints, equal
// final logical clocks, equal per-thread executed instruction counts, and
// byte-identical serialized lock-acquisition schedules -- across every
// workload x optimization row x clock publication mode and every example
// program.  The decoded direct-threaded engine is the oracle; the
// reference tree-walker and the template JIT are each checked against it.
// Any divergence means an engine changed semantics, not just speed.
// (When the JIT is unavailable on a host, kJit runs the decoded fallback
// and these checks hold vacuously for it; tests/interp/jit_test.cpp pins
// down that the JIT actually compiles on supported hosts.)
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "pass/pipeline.hpp"
#include "runtime/schedule.hpp"
#include "workloads/workloads.hpp"

namespace detlock::interp {
namespace {

using workloads::all_workloads;
using workloads::Workload;
using workloads::WorkloadParams;
using workloads::WorkloadSpec;

/// Everything an engine run exposes; operator== drives the comparison.
struct RunObservation {
  std::int64_t checksum = 0;
  std::uint64_t trace = 0;
  std::uint64_t memory = 0;
  std::uint64_t instructions = 0;
  std::uint64_t clock_update_instrs = 0;
  std::uint64_t lock_acquires = 0;
  std::vector<std::uint64_t> final_clocks;
  std::vector<std::uint64_t> per_thread_instructions;
  std::string schedule;

  bool operator==(const RunObservation&) const = default;
};

/// Clock publication policy under test; kEveryUpdate is the default engine
/// configuration, kChunked is the Kendo comparison runtime.
struct Publication {
  const char* name;
  runtime::ClockPublication mode;
  std::uint64_t chunk_size;
};

constexpr Publication kPublications[] = {
    {"every", runtime::ClockPublication::kEveryUpdate, 0},
    {"chunked", runtime::ClockPublication::kChunked, 512},
};

RunObservation run_engine(const ir::Module& module, EngineKind kind, ir::FuncId entry,
                          std::size_t memory_words = 1 << 15,
                          const Publication* pub = nullptr) {
  EngineConfig config;
  config.engine = kind;
  config.memory_words = memory_words;
  config.runtime.keep_trace_events = true;
  if (pub != nullptr) {
    config.runtime.publication = pub->mode;
    if (pub->chunk_size != 0) config.runtime.chunk_size = pub->chunk_size;
  }
  Engine engine(module, config);
  const RunResult r = engine.run(entry, {});
  return RunObservation{r.main_return,
                        r.trace_fingerprint,
                        r.memory_fingerprint,
                        r.instructions,
                        r.clock_update_instrs,
                        r.lock_acquires,
                        r.final_clocks,
                        r.per_thread_instructions,
                        runtime::serialize_schedule(engine.backend().trace().events())};
}

void expect_equivalent(const RunObservation& candidate, const RunObservation& oracle,
                       const std::string& label) {
  EXPECT_EQ(candidate.checksum, oracle.checksum) << label;
  EXPECT_EQ(candidate.trace, oracle.trace) << label;
  EXPECT_EQ(candidate.memory, oracle.memory) << label;
  EXPECT_EQ(candidate.instructions, oracle.instructions) << label;
  EXPECT_EQ(candidate.clock_update_instrs, oracle.clock_update_instrs) << label;
  EXPECT_EQ(candidate.lock_acquires, oracle.lock_acquires) << label;
  EXPECT_EQ(candidate.final_clocks, oracle.final_clocks) << label;
  EXPECT_EQ(candidate.per_thread_instructions, oracle.per_thread_instructions) << label;
  EXPECT_EQ(candidate.schedule, oracle.schedule) << label;
}

WorkloadParams small_params() {
  WorkloadParams p;
  p.threads = 4;
  p.scale = 1;
  return p;
}

class PerWorkload : public ::testing::TestWithParam<std::size_t> {
 protected:
  const WorkloadSpec& spec() const { return all_workloads()[GetParam()]; }
};

// The full matrix: {reference, jit} x opt rows x publication modes, each
// cell diffed against a decoded run of an identically instrumented fresh
// module (engines mutate nothing shared, but instrumentation decisions must
// not leak between builds either).
TEST_P(PerWorkload, EnginesMatchDecodedAcrossOptRowsAndPublication) {
  const std::pair<const char*, pass::PassOptions> rows[] = {
      {"none", pass::PassOptions::none()},   {"opt1", pass::PassOptions::only_opt1()},
      {"opt2", pass::PassOptions::only_opt2()}, {"opt3", pass::PassOptions::only_opt3()},
      {"opt4", pass::PassOptions::only_opt4()}, {"all", pass::PassOptions::all()},
  };
  for (const auto& [row, options] : rows) {
    for (const Publication& pub : kPublications) {
      auto observe = [&](EngineKind kind) {
        Workload w = spec().factory(small_params());
        pass::instrument_module(w.module, options);
        const std::size_t mem = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
        return run_engine(w.module, kind, w.main_func, mem, &pub);
      };
      const RunObservation decoded = observe(EngineKind::kDecoded);
      const std::string label = std::string(spec().name) + "/" + row + "/" + pub.name;
      expect_equivalent(observe(EngineKind::kReference), decoded, label + "/reference");
      expect_equivalent(observe(EngineKind::kJit), decoded, label + "/jit");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PerWorkload, ::testing::Range<std::size_t>(0, 5),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return std::string(all_workloads()[info.param].name);
                         });

// Every checked-in example program, instrumented with the full pipeline,
// under all three engines.  Excluded by construction:
//   abba_deadlock.dl -- deadlocks by design (watchdog fixture);
//   racy_counter.dl  -- intentionally racy, so its schedule is
//                       nondeterministic under every engine.
TEST(DecodedEquivalence, EveryExampleProgramMatches) {
  const std::filesystem::path dir = std::filesystem::path(DETLOCK_SOURCE_DIR) / "share" / "programs";
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dl") continue;
    const std::string stem = entry.path().stem().string();
    if (stem == "abba_deadlock" || stem == "racy_counter") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in) << entry.path();
    std::ostringstream ss;
    ss << in.rdbuf();

    auto observe = [&](EngineKind kind) {
      ir::Module module = ir::parse_module(ss.str());
      pass::instrument_module(module, pass::PassOptions::all());
      return run_engine(module, kind, module.find_function("main"));
    };
    const RunObservation decoded = observe(EngineKind::kDecoded);
    expect_equivalent(observe(EngineKind::kReference), decoded, stem + "/reference");
    expect_equivalent(observe(EngineKind::kJit), decoded, stem + "/jit");
    ++checked;
  }
  EXPECT_GE(checked, 4u) << "program sweep found suspiciously few .dl files";
}

// Chunked clock publication (the Kendo comparison runtime) must also agree
// engine to engine: the chunk counter advances per clock update, so any
// drift in instruction accounting would surface as a different schedule.
// (Also covered inside the matrix above; kept as a fast named smoke.)
TEST(DecodedEquivalence, KendoChunkedPublicationMatches) {
  auto run_kendo = [](EngineKind kind) {
    Workload w = all_workloads()[0].factory(small_params());
    pass::instrument_module(w.module, pass::PassOptions::all());
    const std::size_t mem = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
    return run_engine(w.module, kind, w.main_func, mem, &kPublications[1]);
  };
  const RunObservation decoded = run_kendo(EngineKind::kDecoded);
  expect_equivalent(run_kendo(EngineKind::kReference), decoded, "kendo/reference");
  expect_equivalent(run_kendo(EngineKind::kJit), decoded, "kendo/jit");
}

}  // namespace
}  // namespace detlock::interp
