// Differential suite: the decoded direct-threaded engine must be
// observationally identical to the reference engine -- equal memory and
// trace fingerprints, equal final logical clocks, equal per-thread executed
// instruction counts, and byte-identical serialized lock-acquisition
// schedules -- across every workload x optimization row and every example
// program.  Any divergence means the decoded engine changed semantics, not
// just speed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "pass/pipeline.hpp"
#include "runtime/schedule.hpp"
#include "workloads/workloads.hpp"

namespace detlock::interp {
namespace {

using workloads::all_workloads;
using workloads::Workload;
using workloads::WorkloadParams;
using workloads::WorkloadSpec;

/// Everything an engine run exposes; operator== drives the comparison.
struct RunObservation {
  std::int64_t checksum = 0;
  std::uint64_t trace = 0;
  std::uint64_t memory = 0;
  std::uint64_t instructions = 0;
  std::uint64_t clock_update_instrs = 0;
  std::uint64_t lock_acquires = 0;
  std::vector<std::uint64_t> final_clocks;
  std::vector<std::uint64_t> per_thread_instructions;
  std::string schedule;

  bool operator==(const RunObservation&) const = default;
};

RunObservation run_engine(const ir::Module& module, EngineKind kind, ir::FuncId entry,
                          std::size_t memory_words = 1 << 15) {
  EngineConfig config;
  config.engine = kind;
  config.memory_words = memory_words;
  config.runtime.keep_trace_events = true;
  Engine engine(module, config);
  const RunResult r = engine.run(entry, {});
  return RunObservation{r.main_return,
                        r.trace_fingerprint,
                        r.memory_fingerprint,
                        r.instructions,
                        r.clock_update_instrs,
                        r.lock_acquires,
                        r.final_clocks,
                        r.per_thread_instructions,
                        runtime::serialize_schedule(engine.backend().trace().events())};
}

void expect_equivalent(const RunObservation& decoded, const RunObservation& reference,
                       const std::string& label) {
  EXPECT_EQ(decoded.checksum, reference.checksum) << label;
  EXPECT_EQ(decoded.trace, reference.trace) << label;
  EXPECT_EQ(decoded.memory, reference.memory) << label;
  EXPECT_EQ(decoded.instructions, reference.instructions) << label;
  EXPECT_EQ(decoded.clock_update_instrs, reference.clock_update_instrs) << label;
  EXPECT_EQ(decoded.lock_acquires, reference.lock_acquires) << label;
  EXPECT_EQ(decoded.final_clocks, reference.final_clocks) << label;
  EXPECT_EQ(decoded.per_thread_instructions, reference.per_thread_instructions) << label;
  EXPECT_EQ(decoded.schedule, reference.schedule) << label;
}

WorkloadParams small_params() {
  WorkloadParams p;
  p.threads = 4;
  p.scale = 1;
  return p;
}

class PerWorkload : public ::testing::TestWithParam<std::size_t> {
 protected:
  const WorkloadSpec& spec() const { return all_workloads()[GetParam()]; }
};

TEST_P(PerWorkload, DecodedMatchesReferenceAcrossOptRows) {
  const std::pair<const char*, pass::PassOptions> rows[] = {
      {"none", pass::PassOptions::none()},   {"opt1", pass::PassOptions::only_opt1()},
      {"opt2", pass::PassOptions::only_opt2()}, {"opt3", pass::PassOptions::only_opt3()},
      {"opt4", pass::PassOptions::only_opt4()}, {"all", pass::PassOptions::all()},
  };
  for (const auto& [row, options] : rows) {
    Workload wd = spec().factory(small_params());
    pass::instrument_module(wd.module, options);
    const std::size_t mem = std::max<std::size_t>(wd.memory_words, 1 << 14) * 2;
    const RunObservation decoded = run_engine(wd.module, EngineKind::kDecoded, wd.main_func, mem);

    Workload wr = spec().factory(small_params());
    pass::instrument_module(wr.module, options);
    const RunObservation reference =
        run_engine(wr.module, EngineKind::kReference, wr.main_func, mem);

    expect_equivalent(decoded, reference, std::string(spec().name) + "/" + row);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PerWorkload, ::testing::Range<std::size_t>(0, 5),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return std::string(all_workloads()[info.param].name);
                         });

// Every checked-in example program, instrumented with the full pipeline.
// Excluded by construction:
//   abba_deadlock.dl -- deadlocks by design (watchdog fixture);
//   racy_counter.dl  -- intentionally racy, so its schedule is
//                       nondeterministic under both engines.
TEST(DecodedEquivalence, EveryExampleProgramMatches) {
  const std::filesystem::path dir = std::filesystem::path(DETLOCK_SOURCE_DIR) / "share" / "programs";
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dl") continue;
    const std::string stem = entry.path().stem().string();
    if (stem == "abba_deadlock" || stem == "racy_counter") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in) << entry.path();
    std::ostringstream ss;
    ss << in.rdbuf();

    ir::Module decoded_module = ir::parse_module(ss.str());
    pass::instrument_module(decoded_module, pass::PassOptions::all());
    const RunObservation decoded =
        run_engine(decoded_module, EngineKind::kDecoded, decoded_module.find_function("main"));

    ir::Module reference_module = ir::parse_module(ss.str());
    pass::instrument_module(reference_module, pass::PassOptions::all());
    const RunObservation reference = run_engine(reference_module, EngineKind::kReference,
                                                reference_module.find_function("main"));

    expect_equivalent(decoded, reference, stem);
    ++checked;
  }
  EXPECT_GE(checked, 4u) << "program sweep found suspiciously few .dl files";
}

// Chunked clock publication (the Kendo comparison runtime) must also agree
// engine to engine: the chunk counter advances per clock update, so any
// drift in instruction accounting would surface as a different schedule.
TEST(DecodedEquivalence, KendoChunkedPublicationMatches) {
  auto run_kendo = [](EngineKind kind) {
    Workload w = all_workloads()[0].factory(small_params());
    pass::instrument_module(w.module, pass::PassOptions::all());
    EngineConfig config;
    config.engine = kind;
    config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
    config.runtime.publication = runtime::ClockPublication::kChunked;
    config.runtime.chunk_size = 512;
    config.runtime.keep_trace_events = true;
    Engine engine(w.module, config);
    const RunResult r = engine.run(w.main_func);
    return RunObservation{r.main_return,
                          r.trace_fingerprint,
                          r.memory_fingerprint,
                          r.instructions,
                          r.clock_update_instrs,
                          r.lock_acquires,
                          r.final_clocks,
                          r.per_thread_instructions,
                          runtime::serialize_schedule(engine.backend().trace().events())};
  };
  expect_equivalent(run_kendo(EngineKind::kDecoded), run_kendo(EngineKind::kReference), "kendo");
}

}  // namespace
}  // namespace detlock::interp
