// Per-thread `record` output: an application-visible determinism witness.
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "pass/pipeline.hpp"

namespace detlock::interp {
namespace {

// Each worker records the counter values it observes under the lock: the
// per-thread sequences reveal exactly which slice of the interleaving each
// thread saw.
const char* kRecorder = R"(
extern @record(1) estimate base=4

func @worker(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 15
  br loop
block loop:
  %3 = icmp lt %1, %2
  condbr %3, body, done
block body:
  %4 = const 0
  lock %4
  %5 = const 64
  %6 = load %5
  %7 = const 1
  %8 = add %6, %7
  store %5, %8
  %9 = callx @record(%6)
  unlock %4
  %10 = mul %1, %0
  %1 = add %1, %7
  br loop
block done:
  ret
}
func @main(0) {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = spawn @worker(%2)
  %4 = const 0
  %5 = call @worker(%4)
  join %1
  join %3
  ret
}
)";

TEST(EngineRecord, PerThreadRecordsAreIdenticalAcrossDetRuns) {
  auto run = [] {
    ir::Module m = ir::parse_module(kRecorder);
    pass::instrument_module(m, pass::PassOptions::all());
    EngineConfig config;
    Engine engine(m, config);
    engine.run("main");
    return engine.records();
  };
  const auto a = run();
  const auto b = run();
  // 3 threads x 15 observations each.
  std::size_t total = 0;
  for (const auto& per_thread : a) total += per_thread.size();
  EXPECT_EQ(total, 45u);
  EXPECT_EQ(a, b);
}

TEST(EngineRecord, RecordsPartitionTheCounterSequence) {
  ir::Module m = ir::parse_module(kRecorder);
  pass::instrument_module(m, pass::PassOptions::all());
  EngineConfig config;
  Engine engine(m, config);
  engine.run("main");
  // The union of all threads' observations is exactly {0..44}: each counter
  // value is observed by exactly one thread (mutual exclusion).
  std::vector<bool> seen(45, false);
  for (const auto& per_thread : engine.records()) {
    for (const std::int64_t v : per_thread) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, 45);
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]) << "value " << v << " observed twice";
      seen[static_cast<std::size_t>(v)] = true;
    }
    // Within one thread, observations are strictly increasing (the counter
    // only grows).
    for (std::size_t i = 1; i < per_thread.size(); ++i) EXPECT_GT(per_thread[i], per_thread[i - 1]);
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace detlock::interp
