// Multithreaded interpreter behaviour: spawn/join/lock/barrier plumbing and
// determinism through the full engine.
#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "ir/parser.hpp"

namespace detlock::interp {
namespace {

const char* kParallelSum = R"(
func @worker(1) {
block entry:
  %1 = const 0
  lock %1
  %2 = const 64
  %3 = load %2
  %4 = add %3, %0
  store %2, %4
  unlock %1
  ret
}
func @main(0) {
block entry:
  %0 = const 10
  %1 = spawn @worker(%0)
  %2 = const 20
  %3 = spawn @worker(%2)
  %4 = const 30
  %5 = spawn @worker(%4)
  join %1
  join %3
  join %5
  %6 = const 64
  %7 = load %6
  ret %7
}
)";

TEST(EngineThreads, SpawnJoinLockSum) {
  for (const bool det : {false, true}) {
    const ir::Module m = ir::parse_module(kParallelSum);
    EngineConfig config;
    config.deterministic = det;
    Engine engine(m, config);
    const RunResult r = engine.run("main");
    EXPECT_EQ(r.main_return, 60) << (det ? "det" : "nondet");
    EXPECT_EQ(r.threads, 4u);
  }
}

TEST(EngineThreads, JoinOfUnspawnedThreadThrows) {
  const ir::Module m = ir::parse_module(R"(
func @main(0) {
block entry:
  %0 = const 3
  join %0
  ret
}
)");
  Engine engine(m, {});
  EXPECT_THROW(engine.run("main"), Error);
}

TEST(EngineThreads, WorkerExceptionPropagatesAndUnblocksOthers) {
  // Worker 1 divides by zero; main is joining: the abort protocol must
  // unwind everything and rethrow.
  const ir::Module m = ir::parse_module(R"(
func @crasher(0) {
block entry:
  %0 = const 1
  %1 = const 0
  %2 = div %0, %1
  ret
}
func @main(0) {
block entry:
  %0 = spawn @crasher()
  join %0
  ret
}
)");
  Engine engine(m, {});
  EXPECT_THROW(engine.run("main"), Error);
}

TEST(EngineThreads, FinishingWhileHoldingMutexIsAnError) {
  const ir::Module m = ir::parse_module(R"(
func @main(0) {
block entry:
  %0 = const 0
  lock %0
  ret
}
)");
  Engine engine(m, {});
  EXPECT_THROW(engine.run("main"), Error);
}

TEST(EngineThreads, BarrierSynchronizesPhases) {
  // Phase 1: each worker writes its slot; barrier; phase 2: each reads the
  // other's slot.  Without a correct barrier the loads could see zeros.
  const char* text = R"(
func @worker(1) {
block entry:
  %1 = const 100
  %2 = add %1, %0
  %3 = const 7
  %4 = mul %3, %0
  %5 = add %4, %3
  store %2, %5
  %6 = const 0
  %7 = const 2
  barrier %6, %7
  %8 = const 1
  %9 = sub %8, %0
  %10 = add %1, %9
  %11 = load %10
  %12 = const 200
  %13 = add %12, %0
  store %13, %11
  ret
}
func @main(0) {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 0
  %3 = call @worker(%2)
  join %1
  %4 = const 200
  %5 = load %4
  %6 = load %4 + 1
  %7 = shl %6, %4
  %8 = const 100
  %9 = mul %6, %8
  %10 = add %5, %9
  ret %10
}
)";
  for (const bool det : {false, true}) {
    const ir::Module m = ir::parse_module(text);
    EngineConfig config;
    config.deterministic = det;
    Engine engine(m, config);
    // Worker 0 writes mem[100] = 7; worker 1 writes mem[101] = 14.  After
    // the barrier each reads the other's slot: mem[200] = 14, mem[201] = 7
    // -> result 14 + 7*100.
    EXPECT_EQ(engine.run("main").main_return, 14 + 7 * 100) << (det ? "det" : "nondet");
  }
}

}  // namespace
}  // namespace detlock::interp
