// Structural tests of the predecoder (interp/decode.hpp): flat branch
// targets, sorted/deduplicated switch pools, resolved call pointers, and
// decode-time validation of problems the reference engine only discovers
// while executing.
#include "interp/decode.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "interp/engine.hpp"
#include "ir/parser.hpp"

namespace detlock::interp {
namespace {

TEST(Decode, FlatCodeCoversEveryInstruction) {
  const ir::Module m = ir::parse_module(R"(
func @helper(1) {
block entry:
  %1 = const 2
  %2 = mul %0, %1
  ret %2
}
func @main(0) {
block entry:
  %0 = const 21
  %1 = call @helper(%0)
  ret %1
}
)");
  const DecodedModule dm = decode_module(m);
  ASSERT_EQ(dm.functions.size(), 2u);
  EXPECT_EQ(dm.code.size(), m.total_instr_count());
  // Functions are laid out contiguously, helper first.
  EXPECT_EQ(dm.functions[0].entry, dm.code.data());
  EXPECT_EQ(dm.functions[0].code_size, 3u);
  EXPECT_EQ(dm.functions[1].entry, dm.code.data() + 3);
  EXPECT_GE(dm.functions[0].num_regs, dm.functions[0].num_params);
}

TEST(Decode, BranchTargetsAreFlatOffsets) {
  const ir::Module m = ir::parse_module(R"(
func @main(1) {
block entry:
  condbr %0, then, else
block then:
  %1 = const 1
  ret %1
block else:
  %2 = const 2
  ret %2
}
)");
  const DecodedModule dm = decode_module(m);
  const DecodedInstr& br = dm.functions[0].entry[0];
  ASSERT_EQ(br.op, dop(ir::Opcode::kCondBr));
  // Block `then` starts at flat offset 1, `else` at 3.
  EXPECT_EQ(br.target, 1u);
  EXPECT_EQ(br.target2, 3u);
  EXPECT_EQ(dm.functions[0].entry[br.target].op, dop(ir::Opcode::kConst));
  EXPECT_EQ(dm.functions[0].entry[br.target].imm, 1);
  EXPECT_EQ(dm.functions[0].entry[br.target2].imm, 2);
}

TEST(Decode, SwitchCasesSortedAndFirstDuplicateWins) {
  // Cases deliberately unsorted with a duplicated value (30): the reference
  // engine's linear scan takes the FIRST match, so after sorting the kept
  // target for 30 must be block `a`.
  const ir::Module m = ir::parse_module(R"(
func @main(1) {
block entry:
  switch %0, dflt, [30: a, 10: b, 30: b, 20: a]
block a:
  %1 = const 1
  ret %1
block b:
  %2 = const 2
  ret %2
block dflt:
  %3 = const 3
  ret %3
}
)");
  const DecodedModule dm = decode_module(m);
  const DecodedInstr& sw = dm.functions[0].entry[0];
  ASSERT_EQ(sw.op, dop(ir::Opcode::kSwitch));
  ASSERT_EQ(sw.count, 3u);  // duplicate 30 removed
  const auto begin = dm.case_values.begin() + sw.pool;
  EXPECT_TRUE(std::is_sorted(begin, begin + sw.count));
  EXPECT_EQ(dm.case_values[sw.pool + 0], 10);
  EXPECT_EQ(dm.case_values[sw.pool + 1], 20);
  EXPECT_EQ(dm.case_values[sw.pool + 2], 30);
  const std::uint32_t a_offset = 1;  // block a starts after the switch
  EXPECT_EQ(dm.case_targets[sw.pool + 2], a_offset) << "first duplicate must win";

  // And the executed semantics agree between engines for the duplicate.
  for (EngineKind kind : {EngineKind::kDecoded, EngineKind::kReference}) {
    EngineConfig config;
    config.engine = kind;
    config.memory_words = 1 << 14;
    Engine engine(m, config);
    EXPECT_EQ(engine.run("main", {30}).main_return, 1);
  }
}

TEST(Decode, FusesPairsInPlaceKeepingSecondSlot) {
  // `icmp` + `condbr` and `const` + `add` fall-through pairs are fused into
  // superinstructions IN PLACE: the first slot's opcode changes and nothing
  // moves, so the already-resolved flat branch targets stay valid; the
  // second slot keeps its original instruction (defense in depth -- IR
  // branches can only target block starts, and a second slot is never a
  // block start because fused first ops are non-terminators).
  const ir::Module m = ir::parse_module(R"(
func @main(1) regs=8 {
block entry:
  %1 = const 0
  br h
block h:
  %2 = icmp lt %1, %0
  condbr %2, bump, x
block bump:
  %3 = const 1
  %1 = add %1, %3
  br h
block x:
  ret %1
}
)");
  const DecodedModule dm = decode_module(m);
  const DecodedInstr* code = dm.functions[0].entry;
  // Block h: icmp at flat offset 2 fused with the condbr at 3.
  EXPECT_EQ(code[2].op, kFusedICmpBr);
  EXPECT_EQ(code[3].op, dop(ir::Opcode::kCondBr)) << "second slot must stay plain";
  // Block bump: const at 4 + add + br fused into the loop-closing triple.
  EXPECT_EQ(code[4].op, kFusedConstAddBr);
  EXPECT_EQ(code[5].op, dop(ir::Opcode::kAdd));
  EXPECT_EQ(code[6].op, dop(ir::Opcode::kBr));
  // Both engines agree on the executed semantics (counts the loop).
  for (EngineKind kind : {EngineKind::kDecoded, EngineKind::kReference}) {
    EngineConfig config;
    config.engine = kind;
    config.memory_words = 1 << 14;
    Engine engine(m, config);
    const RunResult r = engine.run("main", {25});
    EXPECT_EQ(r.main_return, 25u);
    EXPECT_EQ(r.instructions, 2 + 25 * 5 + 2 + 1u) << "fused pairs still count as two";
  }
}

TEST(Decode, CallCalleeResolvedToFunctionPointer) {
  const ir::Module m = ir::parse_module(R"(
func @callee(0) {
block entry:
  %0 = const 7
  ret %0
}
func @main(0) {
block entry:
  %0 = call @callee()
  ret %0
}
)");
  const DecodedModule dm = decode_module(m);
  const DecodedInstr& call = dm.functions[1].entry[0];
  ASSERT_EQ(call.op, dop(ir::Opcode::kCall));
  EXPECT_EQ(call.callee, &dm.functions[call.callee_id]);
  EXPECT_EQ(call.callee_id, 0u);
}

TEST(Decode, CallArityMismatchFailsAtDecodeTime) {
  ir::Module m;
  const ir::FuncId callee = m.add_function("two_params", 2);
  {
    ir::Function& f = m.function(callee);
    f.set_num_regs(2);
    const ir::BlockId entry = f.add_block("entry");
    ir::Instr ret;
    ret.op = ir::Opcode::kRet;
    f.block(entry).instrs().push_back(ret);
  }
  const ir::FuncId main_id = m.add_function("main", 0);
  {
    ir::Function& f = m.function(main_id);
    f.set_num_regs(1);
    const ir::BlockId entry = f.add_block("entry");
    ir::Instr call;
    call.op = ir::Opcode::kCall;
    call.dst = 0;
    call.callee = callee;
    call.args = {};  // wrong: callee takes 2
    f.block(entry).instrs().push_back(call);
    ir::Instr ret;
    ret.op = ir::Opcode::kRet;
    f.block(entry).instrs().push_back(ret);
  }
  EXPECT_THROW(decode_module(m), Error);
}

TEST(Decode, UnterminatedBlockFailsAtDecodeTime) {
  ir::Module m;
  const ir::FuncId main_id = m.add_function("main", 0);
  ir::Function& f = m.function(main_id);
  f.set_num_regs(1);
  const ir::BlockId entry = f.add_block("entry");
  f.block(entry).instrs().push_back(ir::Instr::make_const(0, 1));  // no terminator
  EXPECT_THROW(decode_module(m), Error);
}

}  // namespace
}  // namespace detlock::interp
