// Interpreter semantics: arithmetic, control flow, memory, calls, externs.
#include "interp/engine.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"

namespace detlock::interp {
namespace {

std::int64_t run_main(const char* text, std::vector<std::int64_t> args = {}, EngineConfig config = {}) {
  const ir::Module m = ir::parse_module(text);
  config.memory_words = std::max<std::size_t>(config.memory_words, 1 << 14);
  Engine engine(m, config);
  return engine.run("main", args).main_return;
}

TEST(Engine, ArithmeticAndComparisons) {
  EXPECT_EQ(run_main(R"(
func @main(2) {
block entry:
  %2 = add %0, %1
  %3 = mul %2, %2
  %4 = sub %3, %0
  %5 = div %4, %1
  ret %5
}
)",
                     {3, 4}),
            ((3 + 4) * (3 + 4) - 3) / 4);
}

TEST(Engine, SignedDivisionAndRemainder) {
  EXPECT_EQ(run_main(R"(
func @main(2) {
block entry:
  %2 = rem %0, %1
  ret %2
}
)",
                     {-7, 3}),
            -7 % 3);
}

TEST(Engine, DivisionByZeroThrows) {
  EXPECT_THROW(run_main(R"(
func @main(2) {
block entry:
  %2 = div %0, %1
  ret %2
}
)",
                        {1, 0}),
               Error);
}

TEST(Engine, BitwiseAndShifts) {
  EXPECT_EQ(run_main(R"(
func @main(2) {
block entry:
  %2 = and %0, %1
  %3 = or %2, %1
  %4 = xor %3, %0
  %5 = const 3
  %6 = shl %4, %5
  %7 = shr %6, %5
  ret %7
}
)",
                     {0b1100, 0b1010}),
            ((0b1100 & 0b1010) | 0b1010) ^ 0b1100);
}

TEST(Engine, FloatingPointPath) {
  // (sqrt(2.0) * sqrt(2.0) + 1.0) -> 3 (ftoi truncation of 2.9999... or 3).
  const std::int64_t r = run_main(R"(
func @main(0) {
block entry:
  %0 = constf 2.0
  %1 = fsqrt %0
  %2 = fmul %1, %1
  %3 = constf 1.0
  %4 = fadd %2, %3
  %5 = constf 0.5
  %6 = fadd %4, %5
  %7 = ftoi %6
  ret %7
}
)");
  EXPECT_EQ(r, 3);
}

TEST(Engine, CondBrAndSwitch) {
  const char* text = R"(
func @main(1) {
block entry:
  switch %0, dflt, [0: zero, 1: one]
block zero:
  %1 = const 100
  ret %1
block one:
  %2 = const 200
  ret %2
block dflt:
  %3 = const 300
  ret %3
}
)";
  EXPECT_EQ(run_main(text, {0}), 100);
  EXPECT_EQ(run_main(text, {1}), 200);
  EXPECT_EQ(run_main(text, {7}), 300);
}

TEST(Engine, LoopComputesSum) {
  // sum 0..9 = 45.
  EXPECT_EQ(run_main(R"(
func @main(0) regs=8 {
block entry:
  %0 = const 0
  %1 = const 0
  br h
block h:
  %2 = const 10
  %3 = icmp lt %1, %2
  condbr %3, body, x
block body:
  %0 = add %0, %1
  %4 = const 1
  %1 = add %1, %4
  br h
block x:
  ret %0
}
)"),
            45);
}

TEST(Engine, MemoryLoadStore) {
  EXPECT_EQ(run_main(R"(
func @main(0) {
block entry:
  %0 = const 100
  %1 = const 42
  store %0, %1
  store %0 + 1, %0
  %2 = load %0
  %3 = load %0 + 1
  %4 = add %2, %3
  ret %4
}
)"),
            142);
}

TEST(Engine, OutOfBoundsMemoryThrows) {
  EXPECT_THROW(run_main(R"(
func @main(0) {
block entry:
  %0 = const -5
  %1 = load %0
  ret %1
}
)"),
               Error);
}

TEST(Engine, NestedCallsAndRecursion) {
  // Recursive factorial through the interpreter's call stack.
  EXPECT_EQ(run_main(R"(
func @fact(1) {
block entry:
  %1 = const 2
  %2 = icmp lt %0, %1
  condbr %2, base, rec
block base:
  %3 = const 1
  ret %3
block rec:
  %4 = const 1
  %5 = sub %0, %4
  %6 = call @fact(%5)
  %7 = mul %0, %6
  ret %7
}
func @main(1) {
block entry:
  %1 = call @fact(%0)
  ret %1
}
)",
                     {6}),
            720);
}

TEST(Engine, ExternMemsetAndEstimateClock) {
  const ir::Module m = ir::parse_module(R"(
extern @memset(3) estimate base=8 per_unit=2 size_arg=2

func @main(0) {
block entry:
  clockadd 5
  %0 = const 200
  %1 = const 9
  %2 = const 16
  clockadddyn 8 + 2 * %2
  %3 = callx @memset(%0, %1, %2)
  %4 = load %0 + 15
  ret %4
}
)");
  Engine engine(m, {});
  const RunResult r = engine.run("main");
  EXPECT_EQ(r.main_return, 9);  // memset wrote 9s
  // Logical clock: 5 + (8 + 2*16) = 45.
  EXPECT_EQ(r.final_clocks[0], 45u);
  EXPECT_EQ(r.clock_update_instrs, 2u);
}

TEST(Engine, MathExterns) {
  const ir::Module m = ir::parse_module(R"(
extern @fsin(1) -> value estimate base=45
extern @fexp(1) -> value estimate base=45

func @main(0) {
block entry:
  %0 = constf 0.0
  %1 = callx @fsin(%0)
  %2 = callx @fexp(%0)
  %3 = fadd %1, %2
  %4 = ftoi %3
  ret %4
}
)");
  Engine engine(m, {});
  EXPECT_EQ(engine.run("main").main_return, 1);  // sin(0)+exp(0) = 1
}

TEST(Engine, MissingExternImplementationThrows) {
  const ir::Module m = ir::parse_module(R"(
extern @no_such_impl(0) unclocked

func @main(0) {
block entry:
  %0 = callx @no_such_impl()
  ret
}
)");
  Engine engine(m, {});
  EXPECT_THROW(engine.run("main"), Error);
}

TEST(Engine, CustomExternOverride) {
  const ir::Module m = ir::parse_module(R"(
extern @magic(1) -> value unclocked

func @main(1) {
block entry:
  %1 = callx @magic(%0)
  ret %1
}
)");
  Engine engine(m, {});
  engine.externs().register_impl("magic", [](ExternCallContext& c) { return c.args[0] * 3; });
  EXPECT_EQ(engine.run("main", {14}).main_return, 42);
}

TEST(Engine, RecordExternIsPerThread) {
  const ir::Module m = ir::parse_module(R"(
extern @record(1) estimate base=4

func @main(0) {
block entry:
  %0 = const 11
  %1 = callx @record(%0)
  %2 = const 22
  %3 = callx @record(%2)
  ret
}
)");
  Engine engine(m, {});
  engine.run("main");
  ASSERT_EQ(engine.records()[0].size(), 2u);
  EXPECT_EQ(engine.records()[0][0], 11);
  EXPECT_EQ(engine.records()[0][1], 22);
}

TEST(Engine, MaxStepsGuardTrips) {
  EngineConfig config;
  config.max_steps_per_thread = 1000;
  EXPECT_THROW(run_main(R"(
func @main(0) {
block entry:
  br entry2
block entry2:
  br entry
}
)",
                        {}, config),
               Error);
}

TEST(Engine, RunTwiceRefused) {
  const ir::Module m = ir::parse_module("func @main(0) {\nblock entry:\n  ret\n}\n");
  Engine engine(m, {});
  engine.run("main");
  EXPECT_THROW(engine.run("main"), Error);
}

TEST(Engine, DlMallocFreeRoundTrip) {
  const ir::Module m = ir::parse_module(R"(
extern @dl_malloc(1) -> value unclocked
extern @dl_free(1) unclocked

func @main(0) {
block entry:
  %0 = const 16
  %1 = callx @dl_malloc(%0)
  %2 = const 5
  store %1, %2
  %3 = load %1
  %4 = callx @dl_free(%1)
  ret %3
}
)");
  Engine engine(m, {});
  EXPECT_EQ(engine.run("main").main_return, 5);
  EXPECT_EQ(engine.allocator()->live_blocks(), 0u);
}

TEST(Engine, InstructionCountsReported) {
  const ir::Module m = ir::parse_module(R"(
func @main(0) {
block entry:
  %0 = const 1
  %1 = add %0, %0
  ret %1
}
)");
  Engine engine(m, {});
  const RunResult r = engine.run("main");
  EXPECT_EQ(r.instructions, 3u);
  EXPECT_EQ(r.threads, 1u);
}

}  // namespace
}  // namespace detlock::interp
