// FastTrack happens-before detector: unit tests drive the observer hooks
// directly (each sync edge type orders accesses; missing edges race),
// focus-mode finalize() picks the canonical pair, and end-to-end runs
// through the engine check detection, cleanliness, and that observation
// does not perturb execution.
#include "racedetect/hb_detector.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "runtime/config.hpp"
#include "workloads/workloads.hpp"

namespace detlock::racedetect {
namespace {

using runtime::ThreadId;

TEST(HbDetector, SameThreadAccessesNeverRace) {
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_access(0, 5, false, {});
  d.on_access(0, 5, true, {});
  EXPECT_FALSE(d.race_detected());
  EXPECT_EQ(d.accesses_observed(), 3u);
}

TEST(HbDetector, UnsynchronizedWritesRace) {
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_access(1, 5, true, {});
  EXPECT_TRUE(d.race_detected());
  EXPECT_EQ(d.racy_addresses(), (std::vector<std::int64_t>{5}));
}

TEST(HbDetector, RacyAddressSetIsDeduplicatedAndSorted) {
  HbRaceDetector d;
  d.on_access(0, 9, true, {});
  d.on_access(1, 9, true, {});
  d.on_access(0, 9, true, {});  // further conflicts on 9 add nothing
  d.on_access(0, 5, true, {});
  d.on_access(1, 5, false, {});
  EXPECT_EQ(d.racy_addresses(), (std::vector<std::int64_t>{5, 9}));
}

TEST(HbDetector, ForkAndJoinEdgesOrderAccesses) {
  HbRaceDetector d;
  d.on_access(0, 5, true, {});  // parent seeds before spawn
  d.on_thread_start(1, 0);
  d.on_access(1, 5, true, {});  // child sees the fork edge
  d.on_join(0, 1);
  d.on_access(0, 5, false, {});  // parent reads back after join
  EXPECT_FALSE(d.race_detected());
}

TEST(HbDetector, ForkEdgeIsOneDirectional) {
  // The child is ordered after the spawn, but the parent's post-spawn
  // accesses are concurrent with the child's.
  HbRaceDetector d;
  d.on_thread_start(1, 0);
  d.on_access(1, 5, true, {});
  d.on_access(0, 5, true, {});
  EXPECT_TRUE(d.race_detected());
}

TEST(HbDetector, ReleaseAcquireOrdersAccesses) {
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_release(0, 7, 0);
  d.on_acquire(1, 7, 0);
  d.on_access(1, 5, true, {7});
  EXPECT_FALSE(d.race_detected());
}

TEST(HbDetector, DistinctMutexesCreateNoEdge) {
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_release(0, 7, 0);
  d.on_acquire(1, 8, 0);
  d.on_access(1, 5, true, {8});
  EXPECT_TRUE(d.race_detected());
}

TEST(HbDetector, SignalWakeOrdersAccesses) {
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_cond_signal(0, 3, /*target=*/1, 0);
  d.on_cond_wake(1, 3);
  d.on_access(1, 5, true, {});
  EXPECT_FALSE(d.race_detected());
}

TEST(HbDetector, BarrierRoundOrdersAccesses) {
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_barrier_arrive(0, 2, 0);
  d.on_barrier_arrive(1, 2, 0);
  d.on_barrier_depart(0, 2, 0);
  d.on_barrier_depart(1, 2, 0);
  d.on_access(1, 5, true, {});
  EXPECT_FALSE(d.race_detected());
}

TEST(HbDetector, ConcurrentReadsAreCleanUntilAWrite) {
  // Two concurrent reads promote the read epoch to a full vector clock;
  // only the later conflicting write turns that into a race.
  HbRaceDetector d;
  d.on_access(0, 5, false, {});
  d.on_access(1, 5, false, {});
  EXPECT_FALSE(d.race_detected());
  d.on_access(0, 5, true, {});
  EXPECT_TRUE(d.race_detected());
}

TEST(HbDetector, OrderedReadsStayInEpochFastPath) {
  // A read ordered after the previous read replaces the epoch (no
  // promotion), and the ordering keeps a subsequent write clean.
  HbRaceDetector d;
  d.on_access(0, 5, false, {});
  d.on_release(0, 7, 0);
  d.on_acquire(1, 7, 0);
  d.on_access(1, 5, false, {7});
  d.on_access(1, 5, true, {7});
  EXPECT_FALSE(d.race_detected());
}

// ---- atomic and fence edges -------------------------------------------------

using AtomicOp = runtime::AtomicOp;

AtomicOp atomic_op(AtomicOp::Kind kind, AtomicOp::Order order, std::int64_t addr,
                   std::int64_t operand = 0, std::int64_t desired = 0) {
  AtomicOp op;
  op.kind = kind;
  op.order = order;
  op.addr = addr;
  op.operand = operand;
  op.desired = desired;
  return op;
}

TEST(HbAtomic, ReleaseAcquireMessagePassingIsClean) {
  // The MP idiom: plain payload write, release store of the flag, acquire
  // load of the flag, plain payload read.
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_atomic(0, atomic_op(AtomicOp::Kind::kStore, AtomicOp::Order::kRelease, 9, 1), 0, 0);
  d.on_atomic(1, atomic_op(AtomicOp::Kind::kLoad, AtomicOp::Order::kAcquire, 9), 1, 0);
  d.on_access(1, 5, true, {});
  EXPECT_FALSE(d.race_detected());
}

TEST(HbAtomic, RelaxedAtomicsCreateNoEdge) {
  // Same shape with relaxed flag operations: the payload accesses stay
  // concurrent -- exactly what makes an under-fenced Peterson racy.
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_atomic(0, atomic_op(AtomicOp::Kind::kStore, AtomicOp::Order::kRelaxed, 9, 1), 0, 0);
  d.on_atomic(1, atomic_op(AtomicOp::Kind::kLoad, AtomicOp::Order::kAcquire, 9), 1, 0);
  d.on_access(1, 5, true, {});
  EXPECT_TRUE(d.race_detected());
  EXPECT_EQ(d.racy_addresses(), (std::vector<std::int64_t>{5}));
}

TEST(HbAtomic, FailedCasDoesNotRelease) {
  // A failed CAS reads but does not write, so even at acq_rel it publishes
  // nothing for a later acquire to join.
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  // expected (operand) 1, observed 0: the CAS failed.
  d.on_atomic(0, atomic_op(AtomicOp::Kind::kCas, AtomicOp::Order::kAcqRel, 9, 1, 2), 0, 0);
  d.on_atomic(1, atomic_op(AtomicOp::Kind::kLoad, AtomicOp::Order::kAcquire, 9), 0, 0);
  d.on_access(1, 5, true, {});
  EXPECT_TRUE(d.race_detected());
}

TEST(HbAtomic, FailedCasStillAcquires) {
  // The acquire half survives the failure: a failed CAS after a release
  // store joins the published clock.
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_atomic(0, atomic_op(AtomicOp::Kind::kStore, AtomicOp::Order::kRelease, 9, 7), 0, 0);
  d.on_atomic(1, atomic_op(AtomicOp::Kind::kCas, AtomicOp::Order::kAcqRel, 9, 1, 2), 7, 0);
  d.on_access(1, 5, true, {});
  EXPECT_FALSE(d.race_detected());
}

TEST(HbAtomic, SuccessfulCasReleasesLikeAStore) {
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  // expected (operand) 0, observed 0: the CAS succeeded.
  d.on_atomic(0, atomic_op(AtomicOp::Kind::kCas, AtomicOp::Order::kAcqRel, 9, 0, 1), 0, 0);
  d.on_atomic(1, atomic_op(AtomicOp::Kind::kLoad, AtomicOp::Order::kAcquire, 9), 1, 0);
  d.on_access(1, 5, true, {});
  EXPECT_FALSE(d.race_detected());
}

TEST(HbAtomic, RelaxedStoreBreaksTheReleaseChain) {
  // A relaxed write between the release and the acquire clears the
  // published clock: the acquire observes a store that synchronizes with
  // nothing.
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_atomic(0, atomic_op(AtomicOp::Kind::kStore, AtomicOp::Order::kRelease, 9, 1), 0, 0);
  d.on_atomic(2, atomic_op(AtomicOp::Kind::kStore, AtomicOp::Order::kRelaxed, 9, 2), 0, 0);
  d.on_atomic(1, atomic_op(AtomicOp::Kind::kLoad, AtomicOp::Order::kAcquire, 9), 2, 0);
  d.on_access(1, 5, true, {});
  EXPECT_TRUE(d.race_detected());
}

TEST(HbAtomic, AtomicCellsAreNotRaceCandidates) {
  // Turn-serialized atomic operations on the same cell from two threads are
  // never themselves a race, at any ordering.
  HbRaceDetector d;
  d.on_atomic(0, atomic_op(AtomicOp::Kind::kStore, AtomicOp::Order::kRelaxed, 9, 1), 0, 0);
  d.on_atomic(1, atomic_op(AtomicOp::Kind::kAdd, AtomicOp::Order::kRelaxed, 9, 1), 1, 0);
  EXPECT_FALSE(d.race_detected());
}

TEST(HbFence, ReleaseAcquireFenceChainOrdersAccesses) {
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_fence(0, AtomicOp::Order::kRelease, 0);
  d.on_fence(1, AtomicOp::Order::kAcquire, 0);
  d.on_access(1, 5, true, {});
  EXPECT_FALSE(d.race_detected());
}

TEST(HbFence, AcquireFenceAloneCreatesNoEdge) {
  // Nothing was published into the chain, so the join is a no-op.
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_fence(1, AtomicOp::Order::kAcquire, 0);
  d.on_access(1, 5, true, {});
  EXPECT_TRUE(d.race_detected());
}

TEST(HbFence, SeqCstFencesChainTransitively) {
  // seq_cst is acquire+release: a middle thread's fence relays the edge.
  HbRaceDetector d;
  d.on_access(0, 5, true, {});
  d.on_fence(0, AtomicOp::Order::kSeqCst, 0);
  d.on_fence(2, AtomicOp::Order::kSeqCst, 0);
  d.on_fence(1, AtomicOp::Order::kSeqCst, 0);
  d.on_access(1, 5, true, {});
  EXPECT_FALSE(d.race_detected());
}

// ---- focus mode / finalize -------------------------------------------------

TEST(HbFocus, FinalizeReportsCanonicalMinimalPair) {
  HbRaceDetector focus({5});
  focus.on_access(0, 5, true, {}, {0, 3});
  focus.on_access(0, 5, true, {}, {0, 7});  // same segment: not logged again
  focus.on_access(1, 5, true, {}, {1, 2});
  const std::vector<Race> races = focus.finalize(nullptr);
  ASSERT_EQ(races.size(), 1u);
  const Race& r = races[0];
  EXPECT_EQ(r.addr, 5);
  EXPECT_EQ(r.detector, "hb");
  EXPECT_EQ(r.first.thread, 0u);
  EXPECT_EQ(r.first.ordinal, 1u);  // the segment's FIRST write, not the later one
  EXPECT_EQ(r.first.function, "@#0");
  EXPECT_EQ(r.first.instr_index, 3u);
  EXPECT_TRUE(r.first.is_write);
  EXPECT_EQ(r.second.thread, 1u);
  EXPECT_EQ(r.second.function, "@#1");
  EXPECT_EQ(r.second.instr_index, 2u);
  EXPECT_GT(r.first.thread_clock, 0u);  // thread clocks start at 1
  EXPECT_FALSE(r.first.vc.empty());
}

TEST(HbFocus, NonFocusAddressesAreIgnored) {
  HbRaceDetector focus({5});
  focus.on_access(0, 6, true, {});
  focus.on_access(1, 6, true, {});
  EXPECT_TRUE(focus.finalize(nullptr).empty());
}

TEST(HbFocus, OrderedPairYieldsNoRace) {
  HbRaceDetector focus({5});
  focus.on_access(0, 5, true, {});
  focus.on_release(0, 7, 0);
  focus.on_acquire(1, 7, 0);
  focus.on_access(1, 5, true, {7});
  EXPECT_TRUE(focus.finalize(nullptr).empty());
}

// ---- end-to-end through the engine ----------------------------------------

const char* kRacyProgram = R"(
func @worker(1) {
block entry:
  %1 = const 64
  %2 = load %1
  %3 = add %2, %0
  store %1, %3
  ret
}
func @main(0) {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = call @worker(%2)
  join %1
  ret
}
)";

const char* kLockedProgram = R"(
func @worker(1) {
block entry:
  %1 = const 0
  lock %1
  %2 = const 64
  %3 = load %2
  %4 = add %3, %0
  store %2, %4
  unlock %1
  ret
}
func @main(0) {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = call @worker(%2)
  join %1
  ret
}
)";

TEST(HbEndToEnd, TwoPassDetectsRacyCounter) {
  const ir::Module m = ir::parse_module(kRacyProgram);
  // Pass 1: detect the racy-address set.
  HbRaceDetector detect;
  {
    interp::EngineConfig config;
    config.observer = &detect;
    interp::Engine engine(m, config);
    engine.run("main");
  }
  ASSERT_TRUE(detect.race_detected());
  const std::vector<std::int64_t> addrs = detect.racy_addresses();
  ASSERT_TRUE(std::find(addrs.begin(), addrs.end(), 64) != addrs.end());
  // Pass 2: focused replay, then the canonical report.
  HbRaceDetector focus(addrs);
  {
    interp::EngineConfig config;
    config.observer = &focus;
    interp::Engine engine(m, config);
    engine.run("main");
  }
  const std::vector<Race> races = focus.finalize(&m);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].addr, 64);
  EXPECT_EQ(races[0].first.function, "@worker");
  EXPECT_EQ(races[0].second.function, "@worker");
  EXPECT_NE(races[0].first.thread, races[0].second.thread);
}

TEST(HbEndToEnd, LockedCounterIsClean) {
  const ir::Module m = ir::parse_module(kLockedProgram);
  HbRaceDetector detector;
  interp::EngineConfig config;
  config.observer = &detector;
  interp::Engine engine(m, config);
  engine.run("main");
  EXPECT_FALSE(detector.race_detected());
  EXPECT_GT(detector.accesses_observed(), 0u);
}

TEST(HbEndToEnd, AllWorkloadsAreRaceFree) {
  // Weak determinism's precondition, now verified with full happens-before
  // precision (the lockset test covers the same corpus more coarsely).
  using namespace workloads;
  for (const WorkloadSpec& spec : all_workloads()) {
    WorkloadParams params;
    params.threads = 2;
    params.scale = 1;
    Workload w = spec.factory(params);
    HbRaceDetector detector;
    interp::EngineConfig config;
    config.observer = &detector;
    config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
    interp::Engine engine(w.module, config);
    engine.run(w.main_func);
    EXPECT_FALSE(detector.race_detected())
        << spec.name << " addr "
        << (detector.racy_addresses().empty() ? 0 : detector.racy_addresses()[0]);
  }
}

// ---- determinism neutrality and zero cost when off -------------------------

TEST(HbNeutrality, ObserverDoesNotPerturbExecution) {
  const ir::Module m = ir::parse_module(kLockedProgram);
  const auto run = [&m](interp::SyncObserver* obs) {
    interp::EngineConfig config;
    config.observer = obs;
    interp::Engine engine(m, config);
    return engine.run("main");
  };
  const interp::RunResult base = run(nullptr);
  HbRaceDetector detector;
  const interp::RunResult observed = run(&detector);
  EXPECT_EQ(observed.main_return, base.main_return);
  EXPECT_EQ(observed.instructions, base.instructions);
  EXPECT_EQ(observed.trace_fingerprint, base.trace_fingerprint);
  EXPECT_EQ(observed.memory_fingerprint, base.memory_fingerprint);
  EXPECT_EQ(observed.lock_acquires, base.lock_acquires);
  EXPECT_EQ(observed.final_clocks, base.final_clocks);
  EXPECT_EQ(observed.per_thread_instructions, base.per_thread_instructions);
}

TEST(HbZeroCost, ObserverDefaultsOff) {
  // Detection is opt-in: no hook is installed unless a detector is set.
  const interp::EngineConfig engine_defaults;
  EXPECT_EQ(engine_defaults.observer, nullptr);
  const runtime::RuntimeConfig runtime_defaults;
  EXPECT_EQ(runtime_defaults.sync_observer, nullptr);
}

}  // namespace
}  // namespace detlock::racedetect
