// Exact reproducibility of HB race reports -- the milestone's acceptance
// bar: for the seeded racy fixtures the serialized report body is
// byte-identical across both engines, both clock publication modes,
// repeated runs, and chaos perturbation; the benign fixtures stay clean
// under every variant.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/run_config.hpp"
#include "racedetect/hb_detector.hpp"
#include "racedetect/report.hpp"
#include "service/compiled_module.hpp"
#include "service/execution_context.hpp"

namespace detlock::racedetect {
namespace {

std::string load_fixture(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(DETLOCK_SOURCE_DIR) / "share" / "programs" / name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

struct RunVariant {
  api::Mode mode;
  interp::EngineKind engine;
  bool chaos;
};

std::string describe(const RunVariant& v) {
  std::ostringstream out;
  out << (v.mode == api::Mode::kDetLock ? "detlock" : "kendo-sim") << "/"
      << (v.engine == interp::EngineKind::kDecoded ? "decoded" : "reference") << "/"
      << (v.chaos ? "chaos" : "no-chaos");
  return out.str();
}

std::vector<RunVariant> all_variants() {
  std::vector<RunVariant> out;
  for (const api::Mode mode : {api::Mode::kDetLock, api::Mode::kKendoSim}) {
    for (const interp::EngineKind engine :
         {interp::EngineKind::kDecoded, interp::EngineKind::kReference}) {
      for (const bool chaos : {false, true}) {
        out.push_back({mode, engine, chaos});
      }
    }
  }
  return out;
}

api::RunConfig variant_config(const RunVariant& v) {
  api::RunConfig config;
  config.mode = v.mode;
  config.engine = v.engine;
  config.memory_words = 1 << 12;
  config.chaos = v.chaos;
  config.chaos_seed = 7;
  return config;
}

/// Pass 1 (detect) for one variant: the racy-address set.
std::vector<std::int64_t> detect_addrs(const std::string& text, const RunVariant& v) {
  const api::RunConfig config = variant_config(v);
  const auto compiled =
      service::CompiledModule::compile(text, service::compile_options(config));
  HbRaceDetector detect;
  service::ExecutionContext ctx(compiled, config);
  ctx.set_observer(&detect);
  ctx.run("main");
  return detect.racy_addresses();
}

/// Both passes for one variant: the canonical serialized report body
/// (mirrors detlockc's run_race_check); "" when the variant is race-free.
std::string hb_report(const std::string& text, const RunVariant& v) {
  const api::RunConfig config = variant_config(v);
  const auto compiled =
      service::CompiledModule::compile(text, service::compile_options(config));
  HbRaceDetector detect;
  {
    service::ExecutionContext ctx(compiled, config);
    ctx.set_observer(&detect);
    ctx.run("main");
  }
  const std::vector<std::int64_t> addrs = detect.racy_addresses();
  if (addrs.empty()) return "";
  HbRaceDetector focus(addrs);
  {
    service::ExecutionContext ctx(compiled, config);
    ctx.set_observer(&focus);
    ctx.run("main");
  }
  return serialize_races(focus.finalize(&compiled->module()));
}

TEST(HbReproducibility, RacyFixtureAddressSetsAreExact) {
  EXPECT_EQ(detect_addrs(load_fixture("racy_counter.dl"),
                         {api::Mode::kDetLock, interp::EngineKind::kDecoded, false}),
            (std::vector<std::int64_t>{100}));
  EXPECT_EQ(detect_addrs(load_fixture("racy_publish.dl"),
                         {api::Mode::kDetLock, interp::EngineKind::kDecoded, false}),
            (std::vector<std::int64_t>{200, 201}));
}

TEST(HbReproducibility, RacyReportsAreByteIdenticalAcrossEverything) {
  for (const char* fixture : {"racy_counter.dl", "racy_publish.dl"}) {
    const std::string text = load_fixture(fixture);
    const RunVariant base{api::Mode::kDetLock, interp::EngineKind::kDecoded, false};
    const std::string reference = hb_report(text, base);
    ASSERT_FALSE(reference.empty()) << fixture;
    // Same seed, repeated runs: byte-identical.
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(hb_report(text, base), reference) << fixture << " repeat " << rep;
    }
    // Every engine x publication-mode x chaos combination: byte-identical.
    for (const RunVariant& v : all_variants()) {
      EXPECT_EQ(hb_report(text, v), reference) << fixture << " " << describe(v);
    }
  }
}

TEST(HbReproducibility, BenignFixturesAreCleanUnderEveryVariant) {
  for (const char* fixture : {"benign_join.dl", "benign_condvar.dl"}) {
    const std::string text = load_fixture(fixture);
    for (const RunVariant& v : all_variants()) {
      EXPECT_EQ(hb_report(text, v), "") << fixture << " " << describe(v);
    }
  }
}

TEST(HbReproducibility, DetectionDoesNotChangeFingerprints) {
  // Determinism neutrality at the service layer: enabling the observer
  // leaves the run's deterministic outputs untouched (fixture chosen so
  // the program is race-free; racy fixtures are covered engine-level).
  const std::string text = load_fixture("benign_condvar.dl");
  const RunVariant v{api::Mode::kDetLock, interp::EngineKind::kDecoded, false};
  const api::RunConfig config = variant_config(v);
  const auto compiled =
      service::CompiledModule::compile(text, service::compile_options(config));
  const auto snapshot = [&](interp::MemoryAccessObserver* obs) {
    service::ExecutionContext ctx(compiled, config);
    if (obs != nullptr) ctx.set_observer(obs);
    return ctx.run("main");
  };
  const interp::RunResult base = snapshot(nullptr);
  HbRaceDetector detector;
  const interp::RunResult observed = snapshot(&detector);
  EXPECT_EQ(base.main_return, 78);
  EXPECT_EQ(observed.main_return, base.main_return);
  EXPECT_EQ(observed.trace_fingerprint, base.trace_fingerprint);
  EXPECT_EQ(observed.memory_fingerprint, base.memory_fingerprint);
  EXPECT_EQ(observed.final_clocks, base.final_clocks);
  EXPECT_EQ(observed.per_thread_instructions, base.per_thread_instructions);
  EXPECT_GT(detector.accesses_observed(), 0u);
}

}  // namespace
}  // namespace detlock::racedetect
