// Eraser lockset detector: unit-level state machine tests plus end-to-end
// detection through the engine.
#include "racedetect/lockset.hpp"

#include <gtest/gtest.h>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "workloads/workloads.hpp"

namespace detlock::racedetect {
namespace {

using runtime::MutexId;
using runtime::ThreadId;

TEST(Lockset, SingleThreadNeverRaces) {
  LocksetRaceDetector d;
  for (int i = 0; i < 10; ++i) d.on_access(0, 100, i % 2 == 0, {});
  EXPECT_FALSE(d.race_detected());
  EXPECT_EQ(d.accesses_observed(), 10u);
}

TEST(Lockset, ConsistentLockProtectionIsClean) {
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {7});
  d.on_access(1, 100, true, {7});
  d.on_access(0, 100, false, {7});
  EXPECT_FALSE(d.race_detected());
}

TEST(Lockset, UnprotectedWriteWriteRaces) {
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {});
  d.on_access(1, 100, true, {});
  ASSERT_TRUE(d.race_detected());
  EXPECT_EQ(d.races()[0].addr, 100);
  EXPECT_EQ(d.races()[0].second.thread, 1u);
}

TEST(Lockset, ReadSharedDataWithoutLocksIsClean) {
  // Write-once-then-read-everywhere (initialization) stays in Shared state.
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {});
  d.on_access(1, 100, false, {});
  d.on_access(2, 100, false, {});
  EXPECT_FALSE(d.race_detected());
}

TEST(Lockset, WriteAfterReadSharedWithoutLockRaces) {
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {});
  d.on_access(1, 100, false, {});  // shared
  d.on_access(2, 100, true, {});   // shared-modified, empty lockset
  EXPECT_TRUE(d.race_detected());
}

TEST(Lockset, InconsistentLocksRace) {
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {1});
  d.on_access(1, 100, true, {2});  // intersection empty
  EXPECT_TRUE(d.race_detected());
}

TEST(Lockset, CandidateSetRefinesToCommonLock) {
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {1, 2});
  d.on_access(1, 100, true, {2, 3});  // C = {2}
  d.on_access(0, 100, true, {2});     // still {2}
  EXPECT_FALSE(d.race_detected());
  d.on_access(1, 100, true, {3});  // C = {}
  EXPECT_TRUE(d.race_detected());
}

TEST(Lockset, RacyAddressReportedOnce) {
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {});
  d.on_access(1, 100, true, {});
  d.on_access(0, 100, true, {});
  d.on_access(1, 100, true, {});
  EXPECT_EQ(d.races().size(), 1u);
}

TEST(Lockset, DistinctAddressesTrackedIndependently) {
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {1});
  d.on_access(1, 100, true, {1});
  d.on_access(0, 200, true, {});
  d.on_access(1, 200, true, {});
  ASSERT_EQ(d.races().size(), 1u);
  EXPECT_EQ(d.races()[0].addr, 200);
}

TEST(Lockset, BarrierResetsPhases) {
  // write-phase / barrier / read-phase: no false positive.
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {});
  d.on_barrier(0);
  d.on_barrier(1);
  d.on_access(1, 100, false, {});
  d.on_access(2, 100, true, {});  // new phase: 1 read + 2 write unprotected...
  EXPECT_TRUE(d.race_detected());  // ...which IS a same-phase race
}

TEST(Lockset, BarrierDoesNotMaskSamePhaseRace) {
  LocksetRaceDetector d;
  d.on_barrier(0);
  d.on_access(0, 100, true, {});
  d.on_access(1, 100, true, {});
  EXPECT_TRUE(d.race_detected());
}

TEST(Lockset, BarrierResetHappensOncePerRound) {
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {});
  d.on_barrier(0);   // round 1: reset
  d.on_access(0, 100, true, {});
  d.on_barrier(1);   // same round, other thread: no second reset
  d.on_access(1, 100, false, {});
  EXPECT_FALSE(d.race_detected());  // write/read across the reset boundary is ordered
}

TEST(Lockset, JoinOrdersChildWritesBeforeJoinerReads) {
  LocksetRaceDetector d;
  d.on_access(1, 100, true, {});  // child writes unlocked
  d.on_join(0, 1);
  d.on_access(0, 100, false, {});  // parent reads result after join
  EXPECT_FALSE(d.race_detected());
}

TEST(Lockset, JoinDoesNotHideAlreadyReportedRace) {
  LocksetRaceDetector d;
  d.on_access(0, 100, true, {});
  d.on_access(1, 100, true, {});
  ASSERT_TRUE(d.race_detected());
  d.on_join(0, 1);
  EXPECT_TRUE(d.race_detected());
  EXPECT_EQ(d.races().size(), 1u);
}

// ---- end-to-end through the engine ----------------------------------------

const char* kRacyProgram = R"(
func @worker(1) {
block entry:
  %1 = const 64
  %2 = load %1
  %3 = add %2, %0
  store %1, %3
  ret
}
func @main(0) {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = call @worker(%2)
  join %1
  ret
}
)";

const char* kLockedProgram = R"(
func @worker(1) {
block entry:
  %1 = const 0
  lock %1
  %2 = const 64
  %3 = load %2
  %4 = add %3, %0
  store %2, %4
  unlock %1
  ret
}
func @main(0) {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = call @worker(%2)
  join %1
  ret
}
)";

TEST(LocksetEndToEnd, DetectsRacyCounter) {
  const ir::Module m = ir::parse_module(kRacyProgram);
  LocksetRaceDetector detector;
  interp::EngineConfig config;
  config.observer = &detector;
  interp::Engine engine(m, config);
  engine.run("main");
  EXPECT_TRUE(detector.race_detected());
  bool found64 = false;
  for (const Race& r : detector.races()) {
    if (r.addr == 64) found64 = true;
  }
  EXPECT_TRUE(found64);
}

TEST(LocksetEndToEnd, LockedCounterIsClean) {
  const ir::Module m = ir::parse_module(kLockedProgram);
  LocksetRaceDetector detector;
  interp::EngineConfig config;
  config.observer = &detector;
  interp::Engine engine(m, config);
  engine.run("main");
  EXPECT_FALSE(detector.race_detected());
  EXPECT_GT(detector.accesses_observed(), 0u);
}

TEST(LocksetEndToEnd, AllWorkloadsAreRaceFree) {
  // Weak determinism's precondition, verified for every shipped workload.
  // (Small scale: the detector serializes all memory traffic.)
  using namespace workloads;
  for (const WorkloadSpec& spec : all_workloads()) {
    WorkloadParams params;
    params.threads = 2;
    params.scale = 1;
    Workload w = spec.factory(params);
    LocksetRaceDetector detector;
    interp::EngineConfig config;
    config.observer = &detector;
    config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
    interp::Engine engine(w.module, config);
    engine.run(w.main_func);
    EXPECT_FALSE(detector.race_detected()) << spec.name << " addr "
                                           << (detector.races().empty() ? 0 : detector.races()[0].addr);
  }
}

}  // namespace
}  // namespace detlock::racedetect
