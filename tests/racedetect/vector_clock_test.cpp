// Vector-clock algebra: the join-semilattice laws and the epoch ordering
// test FastTrack's correctness rests on.
#include "racedetect/vector_clock.hpp"

#include <gtest/gtest.h>

namespace detlock::racedetect {
namespace {

TEST(VectorClock, DefaultIsBottom) {
  const VectorClock vc;
  EXPECT_EQ(vc.size(), 0u);
  EXPECT_EQ(vc.get(0), 0u);
  EXPECT_EQ(vc.get(1000), 0u);  // reading past the end is 0, not UB
}

TEST(VectorClock, SetGrowsOnDemand) {
  VectorClock vc;
  vc.set(3, 7);
  EXPECT_EQ(vc.size(), 4u);
  EXPECT_EQ(vc.get(3), 7u);
  EXPECT_EQ(vc.get(0), 0u);  // components below stay zero
  EXPECT_EQ(vc.get(4), 0u);
}

TEST(VectorClock, BumpIncrements) {
  VectorClock vc;
  vc.bump(2);
  vc.bump(2);
  EXPECT_EQ(vc.get(2), 2u);
  EXPECT_EQ(vc.get(1), 0u);
}

TEST(VectorClock, JoinIsComponentwiseMax) {
  VectorClock a;
  a.set(0, 5);
  a.set(1, 1);
  VectorClock b;
  b.set(1, 3);
  b.set(2, 2);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 3u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, JoinWithSmallerDoesNotShrink) {
  VectorClock a;
  a.set(2, 9);
  VectorClock b;
  b.set(0, 1);
  a.join(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.get(0), 1u);
  EXPECT_EQ(a.get(2), 9u);
}

TEST(VectorClock, LeqIsPartialOrder) {
  VectorClock a;
  a.set(0, 1);
  VectorClock b;
  b.set(0, 2);
  b.set(1, 1);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  EXPECT_TRUE(a.leq(a));  // reflexive

  // Incomparable pair: concurrent in both directions.
  VectorClock c;
  c.set(1, 5);
  EXPECT_FALSE(b.leq(c));
  EXPECT_FALSE(c.leq(b));
}

TEST(VectorClock, LeqHandlesLengthMismatch) {
  VectorClock a;
  a.set(4, 1);  // longer, trailing nonzero
  VectorClock b;
  b.set(0, 9);
  EXPECT_FALSE(a.leq(b));
  VectorClock z;
  z.set(4, 0);  // longer but all-zero tail
  EXPECT_TRUE(z.leq(b));
}

TEST(Epoch, NoneIsClockZero) {
  const Epoch none;
  EXPECT_FALSE(none.some());
  const Epoch e{3, 1};
  EXPECT_TRUE(e.some());
}

TEST(Epoch, EpochLeqReadsOwnerComponent) {
  VectorClock vc;
  vc.set(1, 4);
  EXPECT_TRUE(epoch_leq(Epoch{1, 4}, vc));
  EXPECT_TRUE(epoch_leq(Epoch{1, 3}, vc));
  EXPECT_FALSE(epoch_leq(Epoch{1, 5}, vc));
  EXPECT_FALSE(epoch_leq(Epoch{0, 1}, vc));  // other component is 0
}

}  // namespace
}  // namespace detlock::racedetect
