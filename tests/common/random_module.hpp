// Random structured-module generator for property tests.
//
// Emits reducible CFGs from nested structured constructs (sequences,
// if/else diamonds, short-circuit patterns, while loops, switches) plus a
// layer of leaf functions, so parser round-trips and pass invariants get
// exercised on shapes resembling compiled C rather than on line noise.
// All programs terminate (loops have bounded trip counts) and are
// single-threaded unless with_sync is set.
#pragma once

#include <string>

#include "interp/externs.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "support/prng.hpp"

namespace detlock::testing {

struct RandomModuleOptions {
  std::uint32_t num_leaf_functions = 3;
  std::uint32_t max_depth = 4;
  std::uint32_t max_stmts_per_block = 5;
  bool with_extern_calls = true;
  bool with_loops = true;
  std::uint64_t seed = 1;
};

class RandomModuleBuilder {
 public:
  explicit RandomModuleBuilder(RandomModuleOptions options) : options_(options), prng_(options.seed) {}

  ir::Module build() {
    ir::Module module;
    interp::declare_standard_externs(module);

    // Leaf functions: straight-line or single-diamond compute.
    for (std::uint32_t i = 0; i < options_.num_leaf_functions; ++i) {
      ir::FunctionBuilder leaf(module, "leaf" + std::to_string(i), 2);
      emit_straight_line(leaf, 3 + prng_.next_below(6));
      if (prng_.next_below(2) == 0) {
        emit_diamond(leaf, 1);
      }
      leaf.ret(last_value(leaf));
    }

    ir::FunctionBuilder main_fn(module, "main", 1);
    last_ = main_fn.param(0);
    emit_body(main_fn, options_.max_depth);
    main_fn.ret(last_value(main_fn));
    ir::verify_module_or_throw(module);
    return module;
  }

 private:
  ir::Reg last_value(ir::FunctionBuilder& b) {
    if (last_ == ir::kInvalidBlock || last_ >= b.func().num_regs()) return b.const_i(1);
    return last_;
  }

  void emit_straight_line(ir::FunctionBuilder& b, std::uint64_t count) {
    using namespace ir;
    Reg v = b.const_i(static_cast<std::int64_t>(prng_.next_below(100)) + 1);
    for (std::uint64_t i = 0; i < count; ++i) {
      switch (prng_.next_below(5)) {
        case 0: v = b.add(v, b.const_i(3)); break;
        case 1: v = b.mul(v, b.const_i(5)); break;
        case 2: v = b.binary(Opcode::kXor, v, b.const_i(0x55)); break;
        case 3: v = b.binary(Opcode::kAnd, v, b.const_i(0xffff)); break;
        default: v = b.sub(v, b.const_i(2)); break;
      }
    }
    last_ = v;
  }

  void emit_diamond(ir::FunctionBuilder& b, std::uint32_t depth) {
    using namespace ir;
    const Reg cond = b.icmp(CmpPred::kLt, last_value(b), b.const_i(50));
    const BlockId then_b = b.make_block("t" + fresh());
    const BlockId else_b = b.make_block("e" + fresh());
    const BlockId merge = b.make_block("m" + fresh());
    b.condbr(cond, then_b, else_b);
    b.set_insert_point(then_b);
    emit_body(b, depth);
    b.br(merge);
    b.set_insert_point(else_b);
    emit_body(b, depth);
    b.br(merge);
    b.set_insert_point(merge);
  }

  void emit_loop(ir::FunctionBuilder& b, std::uint32_t depth) {
    using namespace ir;
    const Reg trip = b.const_i(static_cast<std::int64_t>(prng_.next_below(6)) + 1);
    const Reg i = b.new_reg();
    const Reg one = b.const_i(1);
    b.emit(Instr::make_const(i, 0));
    const BlockId header = b.make_block("lh" + fresh());
    const BlockId body = b.make_block("lb" + fresh());
    const BlockId latch = b.make_block("ll" + fresh());
    const BlockId exit = b.make_block("lx" + fresh());
    b.br(header);
    b.set_insert_point(header);
    b.condbr(b.icmp(CmpPred::kLt, i, trip), body, exit);
    b.set_insert_point(body);
    emit_body(b, depth);
    b.br(latch);
    b.set_insert_point(latch);
    b.emit(Instr::make_binary(Opcode::kAdd, i, i, one));
    b.br(header);
    b.set_insert_point(exit);
  }

  void emit_switch(ir::FunctionBuilder& b, std::uint32_t depth) {
    using namespace ir;
    const Reg sel = b.rem(last_value(b), b.const_i(3));
    const BlockId c0 = b.make_block("s0" + fresh());
    const BlockId c1 = b.make_block("s1" + fresh());
    const BlockId dflt = b.make_block("sd" + fresh());
    const BlockId merge = b.make_block("sm" + fresh());
    b.switch_on(sel, dflt, {{0, c0}, {1, c1}});
    for (const BlockId blk : {c0, c1, dflt}) {
      b.set_insert_point(blk);
      emit_body(b, depth);
      b.br(merge);
    }
    b.set_insert_point(merge);
  }

  void emit_call(ir::FunctionBuilder& b) {
    const std::uint32_t leaf = static_cast<std::uint32_t>(prng_.next_below(options_.num_leaf_functions));
    const ir::Reg arg = last_value(b);
    last_ = b.call(leaf, {arg, arg});
  }

  void emit_extern_call(ir::FunctionBuilder& b) {
    const ir::Reg v = last_value(b);
    last_ = b.call_extern(b.module().find_extern("imax"), {v, v});
  }

  void emit_body(ir::FunctionBuilder& b, std::uint32_t depth) {
    const std::uint64_t stmts = 1 + prng_.next_below(options_.max_stmts_per_block);
    for (std::uint64_t s = 0; s < stmts; ++s) {
      const std::uint64_t kind = prng_.next_below(10);
      if (depth > 0 && kind == 0) {
        emit_diamond(b, depth - 1);
      } else if (depth > 0 && kind == 1 && options_.with_loops) {
        emit_loop(b, depth - 1);
      } else if (depth > 0 && kind == 2) {
        emit_switch(b, depth - 1);
      } else if (kind == 3 && options_.num_leaf_functions > 0) {
        emit_call(b);
      } else if (kind == 4 && options_.with_extern_calls) {
        emit_extern_call(b);
      } else {
        emit_straight_line(b, 1 + prng_.next_below(4));
      }
    }
  }

  std::string fresh() { return std::to_string(counter_++); }

  RandomModuleOptions options_;
  Xoshiro256 prng_;
  ir::Reg last_ = ir::kInvalidBlock;
  std::uint64_t counter_ = 0;
};

inline ir::Module make_random_module(std::uint64_t seed) {
  RandomModuleOptions options;
  options.seed = seed;
  return RandomModuleBuilder(options).build();
}

}  // namespace detlock::testing
