#include "ir/parser.hpp"

#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace detlock::ir {
namespace {

TEST(Parser, MinimalFunction) {
  const Module m = parse_module(R"(
func @main(0) {
block entry:
  %0 = const 42
  ret %0
}
)");
  ASSERT_EQ(m.functions().size(), 1u);
  EXPECT_EQ(m.functions()[0].name(), "main");
  EXPECT_EQ(m.functions()[0].block(0).instrs().size(), 2u);
  EXPECT_TRUE(verify_module(m).empty());
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  const Module m = parse_module(R"(
# leading comment
func @f(1) {   # trailing comment
block entry:
  ret %0       # returns the parameter
}
)");
  EXPECT_EQ(m.functions().size(), 1u);
}

TEST(Parser, ForwardBlockReferences) {
  const Module m = parse_module(R"(
func @f(1) {
block entry:
  condbr %0, later, entry2
block later:
  ret
block entry2:
  br later
}
)");
  const Function& f = m.functions()[0];
  const auto succs = f.block(0).successors();
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_EQ(f.block(succs[0]).name(), "later");
  EXPECT_EQ(f.block(succs[1]).name(), "entry2");
}

TEST(Parser, ForwardFunctionReferences) {
  const Module m = parse_module(R"(
func @caller(0) {
block entry:
  %0 = call @callee()
  ret %0
}

func @callee(0) {
block entry:
  %0 = const 7
  ret %0
}
)");
  EXPECT_EQ(m.functions()[0].block(0).instrs()[0].callee, m.find_function("callee"));
}

TEST(Parser, ExternDeclarations) {
  const Module m = parse_module(R"(
extern @memset(3) estimate base=8 per_unit=2 size_arg=2
extern @sin(1) -> value estimate base=45
extern @mystery(2) -> value unclocked

func @main(0) {
block entry:
  ret
}
)");
  ASSERT_EQ(m.externs().size(), 3u);
  EXPECT_TRUE(m.externs()[0].estimate.has_value());
  EXPECT_TRUE(m.externs()[0].estimate->is_dynamic());
  EXPECT_EQ(m.externs()[0].estimate->size_arg_index, 2u);
  EXPECT_TRUE(m.externs()[1].returns_value);
  EXPECT_FALSE(m.externs()[1].estimate->is_dynamic());
  EXPECT_FALSE(m.externs()[2].estimate.has_value());
}

TEST(Parser, AllInstructionForms) {
  const Module m = parse_module(R"(
extern @memset(3) estimate base=8 per_unit=2 size_arg=2

func @leaf(2) {
block entry:
  %2 = add %0, %1
  ret %2
}

func @main(1) regs=40 {
block entry:
  %1 = const -5
  %2 = constf 2.5
  %3 = mov %1
  %4 = mul %1, %3
  %5 = icmp le %4, %1
  %6 = fcmp gt %2, %2
  %7 = itof %4
  %8 = ftoi %7
  %9 = fsqrt %2
  %10 = load %1 + 8
  store %1 + -2, %4
  %11 = loadf %1
  storef %1, %9
  %12 = call @leaf(%1, %4)
  %13 = callx @memset(%1, %4, %10)
  lock %1
  unlock %1
  barrier %1, %4
  %14 = spawn @leaf(%1, %4)
  join %14
  clockadd 12
  clockadddyn 8 + 1.5 * %4
  switch %5, fallthru, [0: case0, 1: fallthru]
block case0:
  condbr %5, fallthru, case0
block fallthru:
  ret %4
}
)");
  EXPECT_TRUE(verify_module(m).empty());
  // Spot-check a few encodings.
  const Function& f = m.functions()[1];
  const auto& instrs = f.block(0).instrs();
  EXPECT_EQ(instrs[0].imm, -5);
  EXPECT_DOUBLE_EQ(instrs[1].fimm, 2.5);
  EXPECT_EQ(instrs[9].imm, 8);    // load offset
  EXPECT_EQ(instrs[10].imm, -2);  // store offset
  EXPECT_EQ(instrs[20].imm, 12);  // clockadd
  EXPECT_DOUBLE_EQ(instrs[21].fimm, 1.5);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_module("func @f(0) {\nblock entry:\n  bogus %0\n}\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Parser, RejectsDuplicateFunction) {
  EXPECT_THROW(parse_module("func @f(0) {\nblock entry:\n  ret\n}\nfunc @f(0) {\nblock entry:\n  ret\n}\n"),
               Error);
}

TEST(Parser, RejectsDuplicateBlock) {
  EXPECT_THROW(parse_module("func @f(0) {\nblock a:\n  ret\nblock a:\n  ret\n}\n"), Error);
}

TEST(Parser, RejectsUnknownBlockReference) {
  EXPECT_THROW(parse_module("func @f(0) {\nblock entry:\n  br nowhere\n}\n"), Error);
}

TEST(Parser, RejectsInstructionOutsideBlock) {
  EXPECT_THROW(parse_module("func @f(0) {\n  ret\n}\n"), Error);
}

TEST(Parser, RejectsUnterminatedFunction) {
  EXPECT_THROW(parse_module("func @f(0) {\nblock entry:\n  ret\n"), Error);
}

TEST(Parser, RejectsDstOnStore) {
  EXPECT_THROW(parse_module("func @f(2) {\nblock entry:\n  %3 = store %0, %1\n  ret\n}\n"), Error);
}

TEST(Parser, RejectsMissingDstOnAdd) {
  EXPECT_THROW(parse_module("func @f(2) {\nblock entry:\n  add %0, %1\n  ret\n}\n"), Error);
}

TEST(Parser, GrowsRegisterFileForHighRegisters) {
  const Module m = parse_module("func @f(0) {\nblock entry:\n  %17 = const 1\n  ret %17\n}\n");
  EXPECT_GE(m.functions()[0].num_regs(), 18u);
}

}  // namespace
}  // namespace detlock::ir
