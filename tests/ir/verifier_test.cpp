#include "ir/verifier.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace detlock::ir {
namespace {

Module valid_module() {
  Module m;
  FunctionBuilder b(m, "f", 1);
  b.ret(b.param(0));
  return m;
}

TEST(Verifier, AcceptsValidModule) {
  const Module m = valid_module();
  EXPECT_TRUE(verify_module(m).empty());
  EXPECT_NO_THROW(verify_module_or_throw(m));
}

TEST(Verifier, RejectsEmptyBlock) {
  Module m = valid_module();
  m.function(0).add_block("empty");
  const auto issues = verify_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsMissingTerminator) {
  Module m;
  m.add_function("f", 0);
  m.function(0).add_block("entry");
  m.function(0).set_num_regs(1);
  m.function(0).block(0).append(Instr::make_const(0, 1));
  const auto issues = verify_module(m);
  ASSERT_FALSE(issues.empty());
}

TEST(Verifier, RejectsTerminatorInMiddle) {
  Module m;
  m.add_function("f", 0);
  m.function(0).add_block("entry");
  m.function(0).block(0).append(Instr::make_ret());
  m.function(0).block(0).append(Instr::make_ret());
  const auto issues = verify_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("in block middle"), std::string::npos);
}

TEST(Verifier, RejectsOutOfRangeRegister) {
  Module m;
  m.add_function("f", 0);
  m.function(0).set_num_regs(1);
  m.function(0).add_block("entry");
  m.function(0).block(0).append(Instr::make_binary(Opcode::kAdd, 0, 0, 5));
  m.function(0).block(0).append(Instr::make_ret());
  const auto issues = verify_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("%5"), std::string::npos);
}

TEST(Verifier, RejectsBranchToNonexistentBlock) {
  Module m;
  m.add_function("f", 0);
  m.function(0).add_block("entry");
  m.function(0).block(0).append(Instr::make_br(7));
  const auto issues = verify_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("nonexistent block"), std::string::npos);
}

TEST(Verifier, RejectsDuplicateFunctionNames) {
  Module m;
  for (int i = 0; i < 2; ++i) {
    const FuncId f = m.add_function("same", 0);
    m.function(f).add_block("entry");
    m.function(f).block(0).append(Instr::make_ret());
  }
  const auto issues = verify_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("duplicate function"), std::string::npos);
}

TEST(Verifier, RejectsDuplicateBlockNames) {
  Module m;
  const FuncId f = m.add_function("f", 0);
  m.function(f).add_block("b");
  m.function(f).block(0).append(Instr::make_ret());
  m.function(f).add_block("b");
  m.function(f).block(1).append(Instr::make_ret());
  const auto issues = verify_module(m);
  ASSERT_FALSE(issues.empty());
}

TEST(Verifier, RejectsDuplicateSwitchCases) {
  Module m;
  const FuncId f = m.add_function("f", 1);
  m.function(f).set_num_regs(1);
  m.function(f).add_block("entry");
  m.function(f).add_block("t");
  Instr sw;
  sw.op = Opcode::kSwitch;
  sw.a = 0;
  sw.imm = 1;
  sw.args = {3, 1, 3, 1};  // duplicate case value 3
  m.function(f).block(0).append(std::move(sw));
  m.function(f).block(1).append(Instr::make_ret());
  const auto issues = verify_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("duplicate switch case"), std::string::npos);
}

TEST(Verifier, RejectsBadCallArity) {
  Module m;
  FunctionBuilder callee(m, "callee", 2);
  callee.ret();
  Module& mm = m;
  const FuncId caller = mm.add_function("caller", 0);
  mm.function(caller).set_num_regs(2);
  mm.function(caller).add_block("entry");
  Instr call;
  call.op = Opcode::kCall;
  call.dst = 0;
  call.callee = callee.func_id();
  call.args = {1};  // needs 2
  mm.function(caller).block(0).append(std::move(call));
  mm.function(caller).block(0).append(Instr::make_ret());
  const auto issues = verify_module(mm);
  ASSERT_FALSE(issues.empty());
}

TEST(Verifier, RejectsDynamicEstimateWithBadSizeArg) {
  Module m;
  ExternDecl decl;
  decl.name = "e";
  decl.num_params = 1;
  decl.estimate = ExternEstimate{10, 1.0, 5};  // size_arg 5 >= 1 param
  m.add_extern(std::move(decl));
  const auto issues = verify_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("size_arg"), std::string::npos);
}

TEST(Verifier, ThrowListsAllIssues) {
  Module m;
  m.add_function("f", 0);  // no blocks
  m.add_function("g", 0);  // no blocks
  try {
    verify_module_or_throw(m);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("@f"), std::string::npos);
    EXPECT_NE(what.find("@g"), std::string::npos);
  }
}

}  // namespace
}  // namespace detlock::ir
