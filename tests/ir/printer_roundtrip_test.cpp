// Property test: print -> parse -> print is a fixed point, and the reparsed
// module is structurally identical, across a population of random
// structured modules.
#include <gtest/gtest.h>

#include "common/random_module.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace detlock::ir {
namespace {

class PrinterRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrinterRoundTrip, PrintParsePrintIsStable) {
  const Module original = testing::make_random_module(GetParam());
  const std::string text1 = to_string(original);
  const Module reparsed = parse_module(text1);
  EXPECT_TRUE(verify_module(reparsed).empty());
  const std::string text2 = to_string(reparsed);
  EXPECT_EQ(text1, text2);
}

TEST_P(PrinterRoundTrip, ReparsedModuleStructurallyEqual) {
  const Module a = testing::make_random_module(GetParam());
  const Module b = parse_module(to_string(a));
  ASSERT_EQ(a.functions().size(), b.functions().size());
  ASSERT_EQ(a.externs().size(), b.externs().size());
  for (std::size_t f = 0; f < a.functions().size(); ++f) {
    const Function& fa = a.functions()[f];
    const Function& fb = b.functions()[f];
    EXPECT_EQ(fa.name(), fb.name());
    EXPECT_EQ(fa.num_params(), fb.num_params());
    ASSERT_EQ(fa.num_blocks(), fb.num_blocks());
    for (BlockId blk = 0; blk < fa.num_blocks(); ++blk) {
      ASSERT_EQ(fa.block(blk).instrs().size(), fb.block(blk).instrs().size())
          << "function " << fa.name() << " block " << fa.block(blk).name();
      for (std::size_t i = 0; i < fa.block(blk).instrs().size(); ++i) {
        const Instr& ia = fa.block(blk).instrs()[i];
        const Instr& ib = fb.block(blk).instrs()[i];
        EXPECT_EQ(ia.op, ib.op);
        EXPECT_EQ(ia.dst, ib.dst);
        EXPECT_EQ(ia.a, ib.a);
        EXPECT_EQ(ia.b, ib.b);
        EXPECT_EQ(ia.imm, ib.imm);
        EXPECT_EQ(ia.args, ib.args);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterRoundTrip, ::testing::Range<std::uint64_t>(1, 25));

TEST(Printer, ClockInstructionSyntax) {
  Module m;
  FunctionBuilder b(m, "f", 1);
  b.emit(Instr::make_clock_add(42));
  Instr dyn;
  dyn.op = Opcode::kClockAddDyn;
  dyn.imm = 8;
  dyn.fimm = 2.0;
  dyn.a = 0;
  b.emit(dyn);
  b.ret();
  const std::string text = to_string(m);
  EXPECT_NE(text.find("clockadd 42"), std::string::npos);
  EXPECT_NE(text.find("clockadddyn 8 + 2 * %0"), std::string::npos);
  // And it parses back.
  const Module r = parse_module(text);
  EXPECT_EQ(r.functions()[0].block(0).instrs()[0].imm, 42);
}

}  // namespace
}  // namespace detlock::ir
