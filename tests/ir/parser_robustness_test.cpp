// Parser robustness: mutated inputs must either parse to a verifiable
// module or throw detlock::Error -- never crash, hang, or produce IR that
// fails verification.
#include <gtest/gtest.h>

#include "common/random_module.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace detlock::ir {
namespace {

/// Applies `count` random byte-level mutations to text.
std::string mutate(std::string text, Xoshiro256& prng, int count) {
  static const char kChars[] = "abz%@{}()=,:0159 \n\t#-+.*";
  for (int i = 0; i < count && !text.empty(); ++i) {
    const std::size_t pos = prng.next_below(text.size());
    switch (prng.next_below(3)) {
      case 0:  // replace
        text[pos] = kChars[prng.next_below(sizeof(kChars) - 1)];
        break;
      case 1:  // delete
        text.erase(pos, 1);
        break;
      default:  // insert
        text.insert(pos, 1, kChars[prng.next_below(sizeof(kChars) - 1)]);
        break;
    }
  }
  return text;
}

class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRobustness, MutatedInputNeverCrashes) {
  const Module base = testing::make_random_module(GetParam());
  const std::string text = to_string(base);
  Xoshiro256 prng(GetParam() * 7919);
  for (int round = 0; round < 50; ++round) {
    const std::string mutated = mutate(text, prng, 1 + static_cast<int>(prng.next_below(8)));
    try {
      const Module m = parse_module(mutated);
      // If it parses, it may legitimately fail verification (e.g. a deleted
      // instruction broke a block) -- but verification itself must be
      // clean-running, and re-printing must not crash.
      (void)verify_module(m);
      (void)to_string(m);
    } catch (const Error&) {
      // Expected for most mutations.
    }
  }
}

TEST_P(ParserRobustness, TruncationsNeverCrash) {
  const Module base = testing::make_random_module(GetParam());
  const std::string text = to_string(base);
  for (std::size_t len = 0; len < text.size(); len += std::max<std::size_t>(1, text.size() / 40)) {
    try {
      (void)parse_module(text.substr(0, len));
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range<std::uint64_t>(1, 13));

TEST(ParserRobustness, PathologicalInputs) {
  for (const char* input : {
           "",
           "\n\n\n",
           "#",
           "func",
           "func @",
           "func @f",
           "func @f(",
           "func @f(0",
           "func @f(0) {",
           "func @f(0) {}",
           "block x:",
           "}",
           "func @f(0) { block a: ret }",      // one-line body (not line-oriented)
           "extern @e(,) unclocked",
           "func @f(99999999999999999999) {\nblock a:\n  ret\n}",
           "func @f(0) {\nblock a:\n  %999999999999999999999 = const 1\n  ret\n}",
           "func @f(0) {\nblock a:\n  clockadddyn 1 + nan * %0\n  ret\n}",
       }) {
    try {
      const Module m = parse_module(input);
      (void)verify_module(m);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace detlock::ir
