#include "ir/builder.hpp"

#include <gtest/gtest.h>

#include "ir/verifier.hpp"

namespace detlock::ir {
namespace {

TEST(Builder, EntryBlockIsBlockZero) {
  Module m;
  FunctionBuilder b(m, "f", 2);
  EXPECT_EQ(b.insert_point(), Function::kEntry);
  EXPECT_EQ(m.function(b.func_id()).block(0).name(), "entry");
}

TEST(Builder, ParamsOccupyLowRegisters) {
  Module m;
  FunctionBuilder b(m, "f", 3);
  EXPECT_EQ(b.param(0), 0u);
  EXPECT_EQ(b.param(2), 2u);
  EXPECT_EQ(b.new_reg(), 3u);
  EXPECT_THROW(b.param(3), Error);
}

TEST(Builder, BinaryOpsProduceFreshRegisters) {
  Module m;
  FunctionBuilder b(m, "f", 2);
  const Reg s = b.add(b.param(0), b.param(1));
  const Reg t = b.mul(s, s);
  EXPECT_NE(s, t);
  b.ret(t);
  verify_module_or_throw(m);
}

TEST(Builder, AppendingAfterTerminatorThrows) {
  Module m;
  FunctionBuilder b(m, "f", 0);
  b.ret();
  EXPECT_THROW(b.const_i(1), Error);
}

TEST(Builder, CondBrBuildsDiamond) {
  Module m;
  FunctionBuilder b(m, "f", 1);
  const BlockId t = b.make_block("t");
  const BlockId e = b.make_block("e");
  const BlockId mrg = b.make_block("m");
  const Reg c = b.icmp(CmpPred::kLt, b.param(0), b.const_i(10));
  b.condbr(c, t, e);
  b.set_insert_point(t);
  b.br(mrg);
  b.set_insert_point(e);
  b.br(mrg);
  b.set_insert_point(mrg);
  b.ret();
  verify_module_or_throw(m);

  const auto succs = m.function(b.func_id()).block(Function::kEntry).successors();
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_EQ(succs[0], t);
  EXPECT_EQ(succs[1], e);
}

TEST(Builder, SwitchSuccessorsIncludeDefaultFirst) {
  Module m;
  FunctionBuilder b(m, "f", 1);
  const BlockId c0 = b.make_block("c0");
  const BlockId c1 = b.make_block("c1");
  const BlockId d = b.make_block("d");
  b.switch_on(b.param(0), d, {{0, c0}, {5, c1}});
  for (const BlockId blk : {c0, c1, d}) {
    b.set_insert_point(blk);
    b.ret();
  }
  verify_module_or_throw(m);
  const auto succs = m.function(b.func_id()).block(Function::kEntry).successors();
  ASSERT_EQ(succs.size(), 3u);
  EXPECT_EQ(succs[0], d);
}

TEST(Builder, CallArgCountValidatedByVerifier) {
  Module m;
  FunctionBuilder callee(m, "callee", 2);
  callee.ret(callee.add(callee.param(0), callee.param(1)));
  FunctionBuilder caller(m, "caller", 1);
  caller.ret(caller.call(callee.func_id(), {caller.param(0)}));  // 1 arg, needs 2
  const auto issues = verify_module(m);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("expected 2"), std::string::npos);
}

TEST(Builder, EmitAllowsRegisterReassignment) {
  Module m;
  FunctionBuilder b(m, "f", 0);
  const Reg i = b.new_reg();
  b.emit(Instr::make_const(i, 5));
  b.emit(Instr::make_binary(Opcode::kAdd, i, i, i));
  b.ret(i);
  verify_module_or_throw(m);
  EXPECT_EQ(m.function(b.func_id()).block(0).instrs().size(), 3u);
}

TEST(Builder, SpawnJoinLockBarrierShapes) {
  Module m;
  FunctionBuilder worker(m, "worker", 1);
  const Reg mid = worker.const_i(0);
  worker.lock(mid);
  worker.unlock(mid);
  const Reg bid = worker.const_i(0);
  const Reg n = worker.const_i(2);
  worker.barrier(bid, n);
  worker.ret();

  FunctionBuilder main_fn(m, "main", 0);
  const Reg tid = main_fn.const_i(1);
  const Reg h = main_fn.spawn(worker.func_id(), {tid});
  main_fn.join(h);
  main_fn.ret();
  verify_module_or_throw(m);
}

TEST(Module, FindUnknownFunctionOrExternThrows) {
  Module m;
  EXPECT_THROW(m.find_function("nope"), Error);
  EXPECT_THROW(m.find_extern("nope"), Error);
  EXPECT_FALSE(m.has_function("nope"));
  EXPECT_FALSE(m.has_extern("nope"));
}

}  // namespace
}  // namespace detlock::ir
