#include "ir/cost_model.hpp"

#include <gtest/gtest.h>

namespace detlock::ir {
namespace {

Instr of(Opcode op) {
  Instr i;
  i.op = op;
  return i;
}

TEST(CostModel, SimpleOpsCostOne) {
  const CostModel m;
  for (const Opcode op : {Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kAnd, Opcode::kXor,
                          Opcode::kICmp, Opcode::kBr, Opcode::kCondBr, Opcode::kRet, Opcode::kMov,
                          Opcode::kConst, Opcode::kFAdd, Opcode::kFMul}) {
    EXPECT_EQ(m.cost(of(op)), 1) << opcode_name(op);
  }
}

TEST(CostModel, ExpensiveOpsCostMore) {
  const CostModel m;
  EXPECT_EQ(m.cost(of(Opcode::kDiv)), m.div_cost);
  EXPECT_EQ(m.cost(of(Opcode::kRem)), m.div_cost);
  EXPECT_EQ(m.cost(of(Opcode::kFDiv)), m.fdiv_cost);
  EXPECT_EQ(m.cost(of(Opcode::kFSqrt)), m.fsqrt_cost);
  EXPECT_EQ(m.cost(of(Opcode::kLoad)), m.load_cost);
  EXPECT_EQ(m.cost(of(Opcode::kLoadF)), m.load_cost);
  EXPECT_EQ(m.cost(of(Opcode::kStore)), m.store_cost);
  EXPECT_EQ(m.cost(of(Opcode::kCall)), m.call_cost);
  EXPECT_EQ(m.cost(of(Opcode::kSpawn)), m.call_cost);
}

TEST(CostModel, InstrumentationIsFree) {
  const CostModel m;
  EXPECT_EQ(m.cost(of(Opcode::kClockAdd)), 0);
  EXPECT_EQ(m.cost(of(Opcode::kClockAddDyn)), 0);
}

TEST(CostModel, KnobsAreRespected) {
  CostModel m;
  m.div_cost = 99;
  m.load_cost = 7;
  EXPECT_EQ(m.cost(of(Opcode::kDiv)), 99);
  EXPECT_EQ(m.cost(of(Opcode::kLoad)), 7);
}

}  // namespace
}  // namespace detlock::ir
