// Workload generator: the seed IS the program (byte-identical regeneration),
// every generated program parses and verifies clean, and the shapes cover
// the synchronization surface the differential matrix claims to exercise.
#include "fuzz/generator.hpp"

#include <gtest/gtest.h>

#include "fuzz/differ.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace detlock::fuzz {
namespace {

TEST(FuzzGenerator, SameSeedRegeneratesByteIdenticalText) {
  for (std::uint64_t seed : {0ull, 1ull, 51ull, 12345ull}) {
    const GeneratedProgram a = generate(seed);
    const GeneratedProgram b = generate(seed);
    EXPECT_EQ(a.ir_text, b.ir_text) << "seed " << seed;
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_EQ(a.actions, b.actions);
  }
}

TEST(FuzzGenerator, DistinctSeedsProduceDistinctPrograms) {
  EXPECT_NE(generate(0).ir_text, generate(1).ir_text);
}

TEST(FuzzGenerator, SeedIsStampedIntoTheProgramHeader) {
  const GeneratedProgram p = generate(51);
  EXPECT_EQ(p.seed, 51u);
  EXPECT_NE(p.ir_text.find("--seed=51"), std::string::npos);
}

TEST(FuzzGenerator, FirstHundredSeedsParseAndVerifyClean) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const GeneratedProgram p = generate(seed);
    ir::Module m;
    ASSERT_NO_THROW(m = ir::parse_module(p.ir_text)) << "seed " << seed;
    EXPECT_TRUE(ir::verify_module(m).empty()) << "seed " << seed;
    EXPECT_GE(p.threads, 2) << "seed " << seed;
    EXPECT_GT(p.actions, 0) << "seed " << seed;
  }
}

TEST(FuzzGenerator, ShapesCoverTheSynchronizationSurface) {
  // Across a modest seed range the generator must exercise atomics,
  // fences, nested critical sections, and barriers -- otherwise the
  // differential matrix silently stops covering what it claims.
  bool saw_atomic = false, saw_fence = false, saw_barrier = false, saw_cas = false;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const std::string& t = generate(seed).ir_text;
    saw_atomic = saw_atomic || t.find("atomload") != std::string::npos ||
                 t.find("atomstore") != std::string::npos;
    saw_fence = saw_fence || t.find("fence") != std::string::npos;
    saw_barrier = saw_barrier || t.find("barrier") != std::string::npos;
    saw_cas = saw_cas || t.find("atomrmw cas") != std::string::npos;
  }
  EXPECT_TRUE(saw_atomic);
  EXPECT_TRUE(saw_fence);
  EXPECT_TRUE(saw_barrier);
  EXPECT_TRUE(saw_cas);
}

TEST(FuzzDiffer, SeedZeroPassesTheFullMatrix) {
  DiffOptions options;
  options.chaos_seeds = {5};  // one perturbed leg keeps the test fast
  const SeedReport report = check_seed(0, options);
  EXPECT_TRUE(report.ok) << report.failure;
  // 3 engines x 2 publication modes x (1 unperturbed + 1 chaos) runs.
  EXPECT_EQ(report.runs_executed, 12);
  EXPECT_EQ(report.fingerprints.size(), 12u);
}

TEST(FuzzDiffer, ReplayRejectsAProgramThatCannotCompile) {
  const SeedReport report = check_text("bad", "func @main(0) { this is not ir }", {});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.failure.find("compile failed"), std::string::npos);
}

}  // namespace
}  // namespace detlock::fuzz
