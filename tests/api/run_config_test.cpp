// RunConfig is the one place every driver's knob validation lives; these
// tests pin the cross-field contracts and the engine_config() mapping so
// detlockc, measure(), and detserve stay behaviorally identical.
#include <gtest/gtest.h>

#include "api/run_config.hpp"

namespace detlock {
namespace {

TEST(RunConfigTest, DefaultsValidate) {
  api::RunConfig config;
  EXPECT_EQ(config.validate(), std::nullopt);
}

TEST(RunConfigTest, ModeNamesRoundTrip) {
  for (const api::Mode mode : {api::Mode::kBaseline, api::Mode::kClocksOnly, api::Mode::kDetLock,
                               api::Mode::kKendoSim}) {
    const auto parsed = api::mode_from_name(api::mode_name(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
}

TEST(RunConfigTest, ModeShorthands) {
  EXPECT_EQ(api::mode_from_name("nondet"), api::Mode::kClocksOnly);
  EXPECT_EQ(api::mode_from_name("kendo"), api::Mode::kKendoSim);
  EXPECT_EQ(api::mode_from_name("no-such-mode"), std::nullopt);
}

TEST(RunConfigTest, RejectsIllegalValues) {
  api::RunConfig config;
  config.kendo_chunk_size = 0;
  EXPECT_NE(config.validate(), std::nullopt);

  config = {};
  config.runs = 0;
  EXPECT_NE(config.validate(), std::nullopt);

  config = {};
  config.threads_max = 0;
  EXPECT_NE(config.validate(), std::nullopt);

  config = {};
  config.chaos_trials = 0;
  EXPECT_NE(config.validate(), std::nullopt);

  config = {};
  config.memory_words = 100;  // nonzero but below the engine minimum
  EXPECT_NE(config.validate(), std::nullopt);
  config.memory_words = 0;  // 0 = engine default, always legal
  EXPECT_EQ(config.validate(), std::nullopt);
}

TEST(RunConfigTest, ModePredicates) {
  api::RunConfig config;
  config.mode = api::Mode::kBaseline;
  EXPECT_FALSE(config.instrumented());
  EXPECT_FALSE(config.deterministic());
  config.mode = api::Mode::kClocksOnly;
  EXPECT_TRUE(config.instrumented());
  EXPECT_FALSE(config.deterministic());
  config.mode = api::Mode::kDetLock;
  EXPECT_TRUE(config.instrumented());
  EXPECT_TRUE(config.deterministic());
  config.mode = api::Mode::kKendoSim;
  EXPECT_TRUE(config.instrumented());
  EXPECT_TRUE(config.deterministic());
}

TEST(RunConfigTest, EngineConfigMapsModeToBackend) {
  api::RunConfig config;
  config.mode = api::Mode::kClocksOnly;
  EXPECT_FALSE(config.engine_config().deterministic);

  config.mode = api::Mode::kDetLock;
  EXPECT_TRUE(config.engine_config().deterministic);
  EXPECT_EQ(config.engine_config().runtime.publication, runtime::ClockPublication::kEveryUpdate);

  config.mode = api::Mode::kKendoSim;
  config.kendo_chunk_size = 512;
  const interp::EngineConfig kendo = config.engine_config();
  EXPECT_TRUE(kendo.deterministic);
  EXPECT_EQ(kendo.runtime.publication, runtime::ClockPublication::kChunked);
  EXPECT_EQ(kendo.runtime.chunk_size, 512u);
}

TEST(RunConfigTest, EngineConfigWiresPerRunKnobs) {
  api::RunConfig config;
  config.record_trace = true;
  config.keep_trace_events = true;
  config.profile = true;
  config.profile_spans = true;
  config.watchdog_ms = 123;
  config.threads_max = 7;
  const interp::EngineConfig ec = config.engine_config();
  EXPECT_TRUE(ec.runtime.record_trace);
  EXPECT_TRUE(ec.runtime.keep_trace_events);
  EXPECT_TRUE(ec.runtime.profile);
  EXPECT_TRUE(ec.runtime.profile_spans);
  EXPECT_EQ(ec.runtime.watchdog_ms, 123u);
  EXPECT_EQ(ec.runtime.max_threads, 7u);
}

TEST(RunConfigTest, MemoryHintOnlyFillsDefault) {
  api::RunConfig config;
  config.memory_words = 0;
  EXPECT_EQ(config.engine_config(1 << 15).memory_words, static_cast<std::size_t>(1 << 15));
  config.memory_words = 1 << 12;
  EXPECT_EQ(config.engine_config(1 << 15).memory_words, static_cast<std::size_t>(1 << 12));
}

}  // namespace
}  // namespace detlock
