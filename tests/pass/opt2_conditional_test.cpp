// Optimization 2 (Conditional Blocks), paper Figs. 6-10.
#include <gtest/gtest.h>

#include "pass/conservation.hpp"
#include "pass/opt2_conditional.hpp"
#include "pass/pass_test_util.hpp"

namespace detlock::pass {
namespace {

using testing::clock_of;
using testing::prepare;
using testing::Prepared;
using testing::total_clock;

// Diamond where both arms are single-pred / single-succ:
//   entry(cond) -> {t, e} -> m(ret)
// entry: icmp+condbr = 2; t: add+br = 2; e: sub+sub+br = 3; m: ret = 1.
const char* kDiamond = R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
  %2 = add %0, %0
  br m
block e:
  %3 = sub %0, %0
  %4 = sub %3, %0
  br m
block m:
  ret
}
)";

TEST(Opt2a, CondNodeAbsorbsMinimumOfSuccessors) {
  const Prepared p = prepare(kDiamond, PassOptions::only_opt2());
  // Merge push-up first moves m's 1 into t and e (m's preds have single
  // successors): t=3, e=4.  Then the cond rule subtracts min(3,4)=3:
  // entry = 2+3 = 5, t = 0, e = 1, m = 0.
  EXPECT_EQ(clock_of(p, "f", "entry"), 5);
  EXPECT_EQ(clock_of(p, "f", "t"), 0);
  EXPECT_EQ(clock_of(p, "f", "e"), 1);
  EXPECT_EQ(clock_of(p, "f", "m"), 0);
  // Precise: total clock conserved along every path; both paths originally
  // cost entry+arm+m; after: path-t = 5+0 = 5 = 2+2+1; path-e = 5+1 = 6 =
  // 2+3+1.
}

TEST(Opt2a, ReducesClockSites) {
  const Prepared unopt = prepare(kDiamond, PassOptions::none());
  const Prepared opt = prepare(kDiamond, PassOptions::only_opt2());
  EXPECT_EQ(testing::clock_sites(unopt, "f"), 4u);
  EXPECT_EQ(testing::clock_sites(opt, "f"), 2u);
}

TEST(Opt2a, PathCostsExactlyPreserved) {
  // Property stated by the paper: part a "is a precise optimization".
  const Prepared p = prepare(kDiamond, PassOptions::only_opt2());
  const ir::FuncId f = p.module.find_function("f");
  const DivergenceReport report = sample_clock_divergence(p.module, p.assignment, f, 64, 64, 3);
  EXPECT_EQ(report.max_absolute, 0);
}

TEST(Opt2a, MergeBlockNotPushedWhenPredHasOtherSuccessors) {
  // e has two successors (m and x): pushing m's clock up into e would
  // double-charge paths through e -> x... the merge rule must refuse.
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
  br m
block e:
  condbr %1, m, x
block m:
  %2 = add %0, %0
  %3 = add %2, %0
  ret
block x:
  ret
}
)",
                             PassOptions::only_opt2());
  // m keeps its clock (3): its predecessor e branches elsewhere too.
  EXPECT_EQ(clock_of(p, "f", "m"), 3);
}

TEST(Opt2a, LoopHeaderAbsorbsSuccessorsButIsNeverPushedUp) {
  // h (loop header, merge of entry+latch) may still act as a COND node --
  // absorbing min(b, x) = 1 is precise because every h execution is
  // followed by exactly one of b/x.  What must NOT happen is h's clock
  // being pushed up into its predecessors (the latch would change
  // per-iteration accounting): the latch b must end at 0, not at h's
  // clock.
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  br h
block h:
  %1 = icmp lt %0, %0
  condbr %1, b, x
block b:
  br h
block x:
  ret
}
)",
                             PassOptions::only_opt2());
  EXPECT_EQ(clock_of(p, "f", "h"), 3);
  EXPECT_EQ(clock_of(p, "f", "b"), 0);
  EXPECT_EQ(clock_of(p, "f", "x"), 0);
  const DivergenceReport report =
      sample_clock_divergence(p.module, p.assignment, p.module.find_function("f"), 64, 128, 11);
  EXPECT_EQ(report.max_absolute, 0);
}

TEST(Opt2a, BlocksWithSyncOpsNotMoved) {
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
  lock %0
  unlock %0
  br m
block e:
  %2 = add %0, %0
  br m
block m:
  ret
}
)",
                             PassOptions::only_opt2());
  // t is split at lock/unlock; the cond rule must refuse because the
  // successor blocks contain sync boundaries.  entry keeps its own clock.
  EXPECT_EQ(clock_of(p, "f", "entry"), 2);
}

TEST(Opt2a, FixedPointCascadesThroughNestedDiamonds) {
  // Inner diamond collapses first, enabling the outer one on the second
  // sweep (paper: "if it is still possible to apply this optimization once
  // more ... it is applied", the modified flag).
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, a, b
block a:
  condbr %1, a1, a2
block a1:
  %2 = add %0, %0
  br am
block a2:
  %3 = add %0, %0
  br am
block am:
  br m
block b:
  %4 = add %0, %0
  %5 = add %4, %0
  %6 = add %5, %0
  br m
block m:
  ret
}
)",
                             PassOptions::only_opt2());
  // All clock mass should migrate to entry (min path) with remainders on
  // the more expensive sides only.
  EXPECT_GT(clock_of(p, "f", "entry"), 2);
  EXPECT_EQ(clock_of(p, "f", "a1"), 0);
  EXPECT_EQ(clock_of(p, "f", "a2"), 0);
  EXPECT_EQ(clock_of(p, "f", "m"), 0);
  // Precision check.
  const DivergenceReport report =
      sample_clock_divergence(p.module, p.assignment, p.module.find_function("f"), 64, 64, 5);
  EXPECT_EQ(report.max_absolute, 0);
}

TEST(Opt2a, SwitchStatementsAreCondNodes) {
  // Paper Sec. IV-B: "This optimization deals with if-else and switch
  // statements."  A switch whose cases are single-predecessor blocks is a
  // cond node: min(case clocks) migrates into the switch block.
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  %1 = rem %0, %0
  switch %1, dflt, [0: c0, 1: c1]
block c0:
  %2 = add %0, %0
  %3 = add %2, %0
  br m
block c1:
  %4 = add %0, %0
  br m
block dflt:
  %5 = add %0, %0
  %6 = add %5, %0
  %7 = add %6, %0
  br m
block m:
  ret
}
)",
                             PassOptions::only_opt2());
  // m's 1 pushes into the three cases (each has m as its only successor):
  // c0=4, c1=3, dflt=5.  Then entry absorbs min=3: entry = rem(20)+switch(1)
  // +3 = 24; c1 zeroed.
  EXPECT_EQ(clock_of(p, "f", "c1"), 0);
  EXPECT_EQ(clock_of(p, "f", "c0"), 1);
  EXPECT_EQ(clock_of(p, "f", "dflt"), 2);
  EXPECT_EQ(clock_of(p, "f", "m"), 0);
  EXPECT_EQ(clock_of(p, "f", "entry"), 24);
  const DivergenceReport report =
      sample_clock_divergence(p.module, p.assignment, p.module.find_function("f"), 64, 64, 13);
  EXPECT_EQ(report.max_absolute, 0);
}

// ---- part b ---------------------------------------------------------------

// The paper's Fig. 10 pattern:
//   U(if.end21) -> {M(lor.lhs.false23), L(if.then28)}
//   M -> {L, E(for.inc)}
// Give M a big clock so moved/(U+M) stays under 1/10.
const char* kShortCircuit = R"(
func @f(1) {
block U:
  %1 = icmp lt %0, %0
  condbr %1, M, L
block M:
  %2 = add %0, %0
  %3 = add %2, %0
  %4 = add %3, %0
  %5 = add %4, %0
  %6 = add %5, %0
  %7 = add %6, %0
  %8 = add %7, %0
  %9 = add %8, %0
  %10 = add %9, %0
  %11 = add %10, %0
  %12 = add %11, %0
  %13 = add %12, %0
  %14 = add %13, %0
  %15 = add %14, %0
  %16 = add %15, %0
  %17 = add %16, %0
  %18 = add %17, %0
  %19 = add %18, %0
  condbr %1, L, E
block L:
  %20 = add %0, %0
  ret
block E:
  ret
}
)";

TEST(Opt2b, LiftsLowerClockIntoUpper) {
  // Defaults: same loop depth, clock(L)=2 <= clock(U)=2 -> up-move.
  // Divergence = clock(L)/(U+M) = 2/(2+19) < 0.1 -> applied.
  Prepared p = prepare(kShortCircuit, PassOptions::none());
  const std::size_t moves = run_opt2b(p.module, p.assignment, p.module.find_function("f"),
                                      PassOptions::only_opt2());
  EXPECT_EQ(moves, 1u);
  EXPECT_EQ(clock_of(p, "f", "U"), 4);  // 2 + L's 2
  EXPECT_EQ(clock_of(p, "f", "L"), 0);
}

TEST(Opt2b, RefusedWhenDivergenceTooLarge) {
  // Shrink M so moved/(U+M) = 2/(2+2) = 0.5 >= 0.1.
  Prepared p = prepare(R"(
func @f(1) {
block U:
  %1 = icmp lt %0, %0
  condbr %1, M, L
block M:
  condbr %1, L, E
block L:
  %2 = add %0, %0
  ret
block E:
  ret
}
)",
                       PassOptions::none());
  const std::size_t moves = run_opt2b(p.module, p.assignment, p.module.find_function("f"),
                                      PassOptions::only_opt2());
  EXPECT_EQ(moves, 0u);
  EXPECT_EQ(clock_of(p, "f", "L"), 2);
}

TEST(Opt2b, PreciseWhenMiddleHasSingleSuccessor) {
  // Paper: "If [M] had no successor other than [L] ... that optimization
  // ... would have been precise" -- applied regardless of clock sizes.
  Prepared p = prepare(R"(
func @f(1) {
block U:
  %1 = icmp lt %0, %0
  condbr %1, M, L
block M:
  br L
block L:
  %2 = add %0, %0
  %3 = add %2, %0
  %4 = add %3, %0
  ret
}
)",
                       PassOptions::none());
  const std::size_t moves = run_opt2b(p.module, p.assignment, p.module.find_function("f"),
                                      PassOptions::only_opt2());
  EXPECT_EQ(moves, 1u);
  EXPECT_EQ(clock_of(p, "f", "U"), 6);  // 2 + 4
  EXPECT_EQ(clock_of(p, "f", "L"), 0);
  const DivergenceReport report =
      sample_clock_divergence(p.module, p.assignment, p.module.find_function("f"), 64, 64, 7);
  EXPECT_EQ(report.max_absolute, 0);
}

TEST(Opt2b, MovesDownWhenUpperAtHigherLoopDepth) {
  // The paper's actual Fig. 10 case: U sits inside the loop (higher depth),
  // L is the loop exit path... here U is in a loop and L outside it, so the
  // rule removes U's clock and adds it to L.
  Prepared p = prepare(R"(
func @f(1) {
block entry:
  br U
block U:
  %1 = icmp lt %0, %0
  condbr %1, M, L
block M:
  %2 = add %0, %0
  %3 = add %2, %0
  %4 = add %3, %0
  %5 = add %4, %0
  %6 = add %5, %0
  %7 = add %6, %0
  %8 = add %7, %0
  %9 = add %8, %0
  %10 = add %9, %0
  %11 = add %10, %0
  %12 = add %11, %0
  %13 = add %12, %0
  %14 = add %13, %0
  %15 = add %14, %0
  %16 = add %15, %0
  %17 = add %16, %0
  %18 = add %17, %0
  %19 = add %18, %0
  condbr %1, L, E
block E:
  br U
block L:
  %20 = add %0, %0
  ret
}
)",
                       PassOptions::none());
  const std::int64_t u_before = clock_of(p, "f", "U");
  const std::int64_t l_before = clock_of(p, "f", "L");
  const std::size_t moves = run_opt2b(p.module, p.assignment, p.module.find_function("f"),
                                      PassOptions::only_opt2());
  EXPECT_EQ(moves, 1u);
  EXPECT_EQ(clock_of(p, "f", "U"), 0);
  EXPECT_EQ(clock_of(p, "f", "L"), l_before + u_before);
}

TEST(Opt2b, PatternNotMatchedWhenLowerHasExtraPredecessors) {
  Prepared p = prepare(R"(
func @f(1) {
block U:
  %1 = icmp lt %0, %0
  condbr %1, M, L
block M:
  %2 = add %0, %0
  %3 = add %2, %0
  condbr %1, L, E
block E:
  br L
block L:
  %4 = add %0, %0
  ret
}
)",
                       PassOptions::none());
  // L's preds are {U, M, E}: no move.
  const std::size_t moves = run_opt2b(p.module, p.assignment, p.module.find_function("f"),
                                      PassOptions::only_opt2());
  EXPECT_EQ(moves, 0u);
}

}  // namespace
}  // namespace detlock::pass
