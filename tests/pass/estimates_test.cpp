#include "pass/estimates.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "support/error.hpp"

namespace detlock::pass {
namespace {

ir::Module module_with_externs() {
  return ir::parse_module(R"(
extern @memset(3) unclocked
extern @sin(1) -> value unclocked
extern @other(1) unclocked

func @main(0) {
block entry:
  ret
}
)");
}

TEST(Estimates, AppliesFixedAndDynamicEntries) {
  ir::Module m = module_with_externs();
  const std::size_t n = apply_estimate_file(m, R"(
# math functions
sin 45
# size-dependent built-ins: name base per_unit size_arg
memset 8 2.0 2
)");
  EXPECT_EQ(n, 2u);
  const auto& memset_decl = m.extern_decl(m.find_extern("memset"));
  ASSERT_TRUE(memset_decl.estimate.has_value());
  EXPECT_EQ(memset_decl.estimate->base, 8);
  EXPECT_DOUBLE_EQ(memset_decl.estimate->per_unit, 2.0);
  EXPECT_EQ(memset_decl.estimate->size_arg_index, 2u);
  const auto& sin_decl = m.extern_decl(m.find_extern("sin"));
  ASSERT_TRUE(sin_decl.estimate.has_value());
  EXPECT_FALSE(sin_decl.estimate->is_dynamic());
  // @other untouched.
  EXPECT_FALSE(m.extern_decl(m.find_extern("other")).estimate.has_value());
}

TEST(Estimates, UnknownNamesIgnored) {
  ir::Module m = module_with_externs();
  EXPECT_EQ(apply_estimate_file(m, "not_declared 10\n"), 0u);
}

TEST(Estimates, BlankAndCommentLinesIgnored) {
  ir::Module m = module_with_externs();
  EXPECT_EQ(apply_estimate_file(m, "\n\n# only comments\n   \n"), 0u);
}

TEST(Estimates, MalformedLineThrowsWithLineNumber) {
  ir::Module m = module_with_externs();
  try {
    apply_estimate_file(m, "sin 45\nmemset eight\n");
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Estimates, WrongTokenCountThrows) {
  ir::Module m = module_with_externs();
  EXPECT_THROW(apply_estimate_file(m, "sin 45 1.0\n"), Error);  // 3 tokens invalid
}

TEST(Estimates, SizeArgOutOfRangeThrows) {
  ir::Module m = module_with_externs();
  EXPECT_THROW(apply_estimate_file(m, "sin 45 1.0 3\n"), Error);  // @sin has 1 param
}

TEST(Estimates, NegativeBaseRejected) {
  ir::Module m = module_with_externs();
  EXPECT_THROW(apply_estimate_file(m, "sin -5\n"), Error);
}

TEST(Estimates, LaterEntryOverridesEarlier) {
  ir::Module m = module_with_externs();
  apply_estimate_file(m, "sin 45\nsin 50\n");
  EXPECT_EQ(m.extern_decl(m.find_extern("sin")).estimate->base, 50);
}

}  // namespace
}  // namespace detlock::pass
