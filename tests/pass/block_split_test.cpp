#include "pass/block_split.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "pass/pipeline.hpp"

namespace detlock::pass {
namespace {

TEST(BlockSplit, UnclockedCallSplitsBlock) {
  ir::Module m = ir::parse_module(R"(
func @callee(0) {
block entry:
  %0 = const 1
  ret %0
}
func @caller(0) {
block entry:
  %0 = const 1
  %1 = call @callee()
  %2 = add %0, %1
  ret %2
}
)");
  ClockAssignment assignment;  // empty clocked set: callee is unclocked
  const std::size_t splits = split_module_at_boundaries(m, assignment);
  EXPECT_EQ(splits, 1u);
  ir::verify_module_or_throw(m);

  const ir::Function& caller = m.function(m.find_function("caller"));
  ASSERT_EQ(caller.num_blocks(), 2u);
  // The call now leads the split block.
  const ir::BasicBlock& tail = caller.block(1);
  EXPECT_EQ(tail.instrs().front().op, ir::Opcode::kCall);
  // Entry ends with a branch to the tail.
  EXPECT_EQ(caller.block(0).terminator().op, ir::Opcode::kBr);
}

TEST(BlockSplit, CallAlreadyLeadingDoesNotSplit) {
  ir::Module m = ir::parse_module(R"(
func @callee(0) {
block entry:
  ret
}
func @caller(0) {
block entry:
  %0 = call @callee()
  %1 = const 2
  ret %1
}
)");
  ClockAssignment assignment;
  EXPECT_EQ(split_module_at_boundaries(m, assignment), 0u);
}

TEST(BlockSplit, ClockedCalleeDoesNotSplit) {
  // Paper Fig. 5: a call to a clockable function stays inline.
  ir::Module m = ir::parse_module(R"(
func @callee(0) {
block entry:
  %0 = const 1
  ret %0
}
func @caller(0) {
block entry:
  %0 = const 1
  %1 = call @callee()
  %2 = add %0, %1
  ret %2
}
)");
  ClockAssignment assignment;
  assignment.clocked_functions.emplace(m.find_function("callee"), 3);
  EXPECT_EQ(split_module_at_boundaries(m, assignment), 0u);
}

TEST(BlockSplit, EstimatedExternDoesNotSplitUnclockedExternDoes) {
  ir::Module m = ir::parse_module(R"(
extern @sin(1) -> value estimate base=45
extern @mystery(1) -> value unclocked

func @f(1) {
block entry:
  %1 = const 3
  %2 = callx @sin(%0)
  %3 = callx @mystery(%0)
  %4 = add %2, %3
  ret %4
}
)");
  ClockAssignment assignment;
  const std::size_t splits = split_module_at_boundaries(m, assignment);
  EXPECT_EQ(splits, 1u);  // only @mystery forces a boundary
  const ir::Function& f = m.functions()[0];
  EXPECT_EQ(f.block(1).instrs().front().op, ir::Opcode::kCallExtern);
  EXPECT_EQ(f.block(1).instrs().front().callee, m.find_extern("mystery"));
}

TEST(BlockSplit, SyncOpsAreBoundaries) {
  ir::Module m = ir::parse_module(R"(
func @f(0) {
block entry:
  %0 = const 0
  lock %0
  %1 = const 1
  unlock %0
  %2 = add %0, %1
  ret %2
}
)");
  ClockAssignment assignment;
  const std::size_t splits = split_module_at_boundaries(m, assignment);
  EXPECT_EQ(splits, 2u);  // lock and unlock each start a block
  ir::verify_module_or_throw(m);
  const ir::Function& f = m.functions()[0];
  ASSERT_EQ(f.num_blocks(), 3u);
  EXPECT_EQ(f.block(1).instrs().front().op, ir::Opcode::kLock);
  EXPECT_EQ(f.block(2).instrs().front().op, ir::Opcode::kUnlock);
}

TEST(BlockSplit, MultipleCallsChainSplits) {
  ir::Module m = ir::parse_module(R"(
func @g(0) {
block entry:
  ret
}
func @f(0) {
block entry:
  %0 = const 1
  %1 = call @g()
  %2 = const 2
  %3 = call @g()
  %4 = const 3
  ret %4
}
)");
  ClockAssignment assignment;
  EXPECT_EQ(split_module_at_boundaries(m, assignment), 2u);
  const ir::Function& f = m.function(m.find_function("f"));
  EXPECT_EQ(f.num_blocks(), 3u);
  ir::verify_module_or_throw(m);
}

TEST(BlockSplit, SplitPreservesExecutionSemantics) {
  // After splitting, per-block flag computation marks call-leading blocks.
  ir::Module m = ir::parse_module(R"(
func @g(0) {
block entry:
  %0 = const 9
  ret %0
}
func @f(0) {
block entry:
  %0 = const 1
  %1 = call @g()
  %2 = add %0, %1
  ret %2
}
)");
  PassOptions options;
  ClockAssignment assignment;
  compute_assignment(m, options, assignment);
  const ir::FuncId f = m.find_function("f");
  EXPECT_FALSE(assignment.funcs[f][0].has_unclocked_call);
  EXPECT_TRUE(assignment.funcs[f][1].has_unclocked_call);
}

}  // namespace
}  // namespace detlock::pass
