// Materialization: kClockAdd placement and kClockAddDyn pinning.
#include "pass/materialize.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "pass/pipeline.hpp"
#include "support/error.hpp"

namespace detlock::pass {
namespace {

ir::Module instrumented(const char* text, ClockPlacement placement) {
  ir::Module m = ir::parse_module(text);
  PassOptions options;
  options.placement = placement;
  instrument_module(m, options);
  return m;
}

const char* kSimple = R"(
func @f(1) {
block entry:
  %1 = add %0, %0
  %2 = mul %1, %1
  ret %2
}
)";

TEST(Materialize, StartPlacementPutsUpdateFirst) {
  const ir::Module m = instrumented(kSimple, ClockPlacement::kStart);
  const auto& instrs = m.functions()[0].block(0).instrs();
  ASSERT_EQ(instrs.size(), 4u);
  EXPECT_EQ(instrs[0].op, ir::Opcode::kClockAdd);
  EXPECT_EQ(instrs[0].imm, 3);  // add + mul + ret
}

TEST(Materialize, EndPlacementPutsUpdateBeforeTerminator) {
  const ir::Module m = instrumented(kSimple, ClockPlacement::kEnd);
  const auto& instrs = m.functions()[0].block(0).instrs();
  ASSERT_EQ(instrs.size(), 4u);
  EXPECT_EQ(instrs[2].op, ir::Opcode::kClockAdd);
  EXPECT_EQ(instrs[3].op, ir::Opcode::kRet);
}

TEST(Materialize, StartPlacementAfterLeadingBoundary) {
  // After splitting, a lock leads its block; the update goes right after it
  // (the instructions behind the lock must not be pre-counted before the
  // lock's turn decision).
  const ir::Module m = instrumented(R"(
func @f(1) {
block entry:
  %1 = const 0
  lock %1
  %2 = add %0, %0
  unlock %1
  ret
}
)",
                                    ClockPlacement::kStart);
  const ir::Function& f = m.functions()[0];
  ASSERT_EQ(f.num_blocks(), 3u);
  // Block 1 starts with the lock, then its clock update.
  const auto& b1 = f.block(1).instrs();
  EXPECT_EQ(b1[0].op, ir::Opcode::kLock);
  EXPECT_EQ(b1[1].op, ir::Opcode::kClockAdd);
}

TEST(Materialize, ZeroClockBlocksGetNoUpdate) {
  ir::Module m = ir::parse_module(R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
  %2 = add %0, %0
  br m
block e:
  %3 = sub %0, %0
  br m
block m:
  ret
}
)");
  const PipelineStats stats = instrument_module(m, PassOptions::only_opt2());
  // Opt2 zeroes at least t/e/m; only nonzero blocks carry updates.
  std::size_t clock_adds = 0;
  for (const ir::BasicBlock& b : m.functions()[0].blocks()) {
    for (const ir::Instr& i : b.instrs()) {
      if (i.op == ir::Opcode::kClockAdd) ++clock_adds;
    }
  }
  EXPECT_EQ(clock_adds, stats.materialized.clock_add_sites);
  EXPECT_LT(clock_adds, 4u);
}

TEST(Materialize, DynamicExternEmitsClockAddDynBeforeCall) {
  const ir::Module m = instrumented(R"(
extern @memset(3) estimate base=8 per_unit=2 size_arg=2

func @f(1) {
block entry:
  %1 = const 7
  %2 = callx @memset(%0, %0, %1)
  ret
}
)",
                                    ClockPlacement::kStart);
  const auto& instrs = m.functions()[0].block(0).instrs();
  // clockadd (static), const, clockadddyn, callx, ret.
  ASSERT_EQ(instrs.size(), 5u);
  EXPECT_EQ(instrs[0].op, ir::Opcode::kClockAdd);
  EXPECT_EQ(instrs[2].op, ir::Opcode::kClockAddDyn);
  EXPECT_EQ(instrs[2].imm, 8);
  EXPECT_DOUBLE_EQ(instrs[2].fimm, 2.0);
  EXPECT_EQ(instrs[2].a, instrs[3].args[2]);  // size register
  EXPECT_EQ(instrs[3].op, ir::Opcode::kCallExtern);
}

TEST(Materialize, ClockedFunctionBodiesCarryNoUpdates) {
  ir::Module m = ir::parse_module(R"(
func @leaf(1) {
block entry:
  %1 = add %0, %0
  ret %1
}
func @main(1) {
block entry:
  %1 = call @leaf(%0)
  ret %1
}
)");
  instrument_module(m, PassOptions::only_opt1());
  for (const ir::Instr& i : m.function(m.find_function("leaf")).block(0).instrs()) {
    EXPECT_FALSE(ir::is_clock_update(i.op));
  }
  // Caller's single update covers call + ret + estimate.
  const auto& main_instrs = m.function(m.find_function("main")).block(0).instrs();
  EXPECT_EQ(main_instrs[0].op, ir::Opcode::kClockAdd);
  EXPECT_EQ(main_instrs[0].imm, 5);  // leaf(2) + call(2) + ret(1)
}

TEST(Materialize, ReinstrumentationRejected) {
  ir::Module m = ir::parse_module(kSimple);
  instrument_module(m, PassOptions::none());
  EXPECT_THROW(instrument_module(m, PassOptions::none()), Error);
  EXPECT_THROW(instrument_module(m, PassOptions::all()), Error);
}

TEST(Materialize, StatsCountSites) {
  ir::Module m = ir::parse_module(kSimple);
  const PipelineStats stats = instrument_module(m, PassOptions::none());
  EXPECT_EQ(stats.materialized.clock_add_sites, 1u);
  EXPECT_EQ(stats.materialized.clock_dyn_sites, 0u);
}

}  // namespace
}  // namespace detlock::pass
