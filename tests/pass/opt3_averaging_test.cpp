// Optimization 3 (Averaging of Clocks), paper Figs. 11-12.
#include <gtest/gtest.h>

#include "pass/conservation.hpp"
#include "pass/opt3_averaging.hpp"
#include "pass/pass_test_util.hpp"

namespace detlock::pass {
namespace {

using testing::clock_of;
using testing::prepare;
using testing::Prepared;

// Balanced double-diamond region rooted at entry:
// paths entry->t->m->{p,q}->x all cost nearly the same.
const char* kBalancedRegion = R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
  %2 = add %0, %0
  %3 = add %2, %0
  br m
block e:
  %4 = sub %0, %0
  %5 = sub %4, %0
  br m
block m:
  condbr %1, p, q
block p:
  %6 = add %0, %0
  br x
block q:
  %7 = sub %0, %0
  br x
block x:
  ret
}
)";

TEST(Opt3, CollapsesBalancedRegionToOneUpdate) {
  const Prepared p = prepare(kBalancedRegion, PassOptions::only_opt3());
  // All four paths cost: entry(2) + arm(3) + m(1) + leg(2) + x(1) = 9.
  EXPECT_EQ(clock_of(p, "f", "entry"), 9);
  for (const char* b : {"t", "e", "m", "p", "q", "x"}) {
    EXPECT_EQ(clock_of(p, "f", b), 0) << b;
  }
  EXPECT_EQ(p.stats.opt3_regions, 1u);
  EXPECT_EQ(testing::clock_sites(p, "f"), 1u);
}

TEST(Opt3, DivergenceBoundedByCriteria) {
  const Prepared p = prepare(kBalancedRegion, PassOptions::only_opt3());
  const DivergenceReport report =
      sample_clock_divergence(p.module, p.assignment, p.module.find_function("f"), 128, 64, 17);
  // All paths equal -> the average is exact here.
  EXPECT_EQ(report.max_absolute, 0);
}

TEST(Opt3, RejectsWideSpreadRegion) {
  std::string heavy;
  for (int i = 0; i < 40; ++i) heavy += "  %9 = add %0, %0\n";
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
)" + heavy + R"(
  br x
block e:
  br x
block x:
  ret
}
)",
                             PassOptions::only_opt3());
  EXPECT_EQ(p.stats.opt3_regions, 0u);
  EXPECT_GT(clock_of(p, "f", "t"), 0);
}

TEST(Opt3, StopsAtLoops) {
  // The region cannot swallow the loop: paths stop at back edges, and the
  // cycle makes the candidate invalid, so clocks inside the loop stay.
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, a, b
block a:
  br h
block b:
  br h
block h:
  condbr %1, body, x
block body:
  %2 = add %0, %0
  br h
block x:
  ret
}
)",
                             PassOptions::only_opt3());
  EXPECT_GT(clock_of(p, "f", "body") + clock_of(p, "f", "h"), 0);
}

TEST(Opt3, RefusesRegionWithUnclockedCall) {
  const Prepared p = prepare(R"(
func @opaque_fn(0) {
block entry:
  ret
}
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
  %2 = call @opaque_fn()
  br x
block e:
  br x
block x:
  ret
}
func @main(1) {
block entry:
  %1 = call @f(%0)
  %2 = call @opaque_fn()
  ret
}
)",
                             PassOptions::only_opt3());
  // The t arm contains an unclocked call; region growth stops before it and
  // no averaging that covers it may happen.  (entry may still keep its own
  // clock.)
  EXPECT_EQ(p.stats.opt3_regions, 0u);
}

TEST(Opt3, ContinuesSearchBelowAveragedRegion) {
  // Two stacked balanced regions separated by an uneven junction: the first
  // is averaged, then the DFS resumes at the frontier and averages the
  // second.
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
  br m
block e:
  br m
block m:
  %2 = add %0, %0
  condbr %1, p, q
block p:
  br y
block q:
  br y
block y:
  ret
}
)",
                             PassOptions::only_opt3());
  // The whole function is one closed region from entry (all paths equal
  // cost), so one region suffices -- or, if growth stopped at m, two.
  // Either way every block except region roots is zero.
  EXPECT_GE(p.stats.opt3_regions, 1u);
  EXPECT_EQ(clock_of(p, "f", "p"), 0);
  EXPECT_EQ(clock_of(p, "f", "q"), 0);
  const DivergenceReport report =
      sample_clock_divergence(p.module, p.assignment, p.module.find_function("f"), 64, 64, 23);
  EXPECT_EQ(report.max_absolute, 0);
}

TEST(Opt3, RoundsMeanToNearestInteger) {
  // Paths cost 9 and 10 -> mean 9.5 -> rounds to 10 (llround half-up).
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
  %2 = add %0, %0
  %3 = add %2, %0
  %4 = add %3, %0
  %5 = add %4, %0
  %6 = add %5, %0
  %7 = add %6, %0
  br x
block e:
  %8 = add %0, %0
  %9 = add %8, %0
  %10 = add %9, %0
  %11 = add %10, %0
  %12 = add %11, %0
  br x
block x:
  ret
}
)",
                             PassOptions::only_opt3());
  ASSERT_EQ(p.stats.opt3_regions, 1u);
  // Paths: 2+7+1 = 10 and 2+6+1 = 9 -> mean 9.5 -> 10.
  EXPECT_EQ(clock_of(p, "f", "entry"), 10);
}

}  // namespace
}  // namespace detlock::pass
