// Shared helpers for pass tests.
#pragma once

#include <string>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "pass/pipeline.hpp"

namespace detlock::pass::testing {

struct Prepared {
  ir::Module module;
  ClockAssignment assignment;
  PipelineStats stats;
};

/// Runs phases 1-4 (no materialization) on textual IR.
inline Prepared prepare(const std::string& text, const PassOptions& options) {
  Prepared p;
  p.module = ir::parse_module(text);
  p.stats = compute_assignment(p.module, options, p.assignment);
  return p;
}

/// Clock of the block named `block` in function `func`.
inline std::int64_t clock_of(const Prepared& p, const std::string& func, const std::string& block) {
  const ir::FuncId f = p.module.find_function(func);
  const ir::BlockId b = p.module.function(f).find_block(block);
  DETLOCK_CHECK(b != ir::kInvalidBlock, "no block '" + block + "' in @" + func);
  return p.assignment.funcs[f][b].clock;
}

inline std::int64_t original_cost_of(const Prepared& p, const std::string& func, const std::string& block) {
  const ir::FuncId f = p.module.find_function(func);
  const ir::BlockId b = p.module.function(f).find_block(block);
  DETLOCK_CHECK(b != ir::kInvalidBlock, "no block '" + block + "' in @" + func);
  return p.assignment.funcs[f][b].original_cost;
}

/// Total assigned clock over a function (conservation checks).
inline std::int64_t total_clock(const Prepared& p, const std::string& func) {
  return p.assignment.funcs[p.module.find_function(func)].total_assigned();
}

inline std::size_t clock_sites(const Prepared& p, const std::string& func) {
  return p.assignment.funcs[p.module.find_function(func)].nonzero_sites();
}

}  // namespace detlock::pass::testing
