// Pipeline-wide properties checked over a population of random structured
// modules (see tests/common/random_module.hpp):
//   * the instrumented module always verifies;
//   * assigned clocks are never negative;
//   * precise-only configurations conserve clocks exactly along every path;
//   * full optimization keeps sampled divergence within the documented
//     bounds;
//   * optimizations never increase the number of update sites.
#include <gtest/gtest.h>

#include "common/random_module.hpp"
#include "ir/verifier.hpp"
#include "pass/conservation.hpp"
#include "pass/pipeline.hpp"

namespace detlock::pass {
namespace {

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, InstrumentedModuleVerifies) {
  for (const PassOptions& options :
       {PassOptions::none(), PassOptions::only_opt1(), PassOptions::only_opt2(), PassOptions::only_opt3(),
        PassOptions::only_opt4(), PassOptions::all()}) {
    ir::Module m = testing::make_random_module(GetParam());
    instrument_module(m, options);  // verifies internally
  }
}

TEST_P(PipelineProperty, PairwiseOptimizationCombinationsStayBounded) {
  // The optimizations compose: every pair must keep the sampled divergence
  // inside the single-opt envelope (they operate on disjoint legality
  // conditions, so composition only ever moves/zeroes already-placed
  // clocks).
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      PassOptions options;
      options.opt1_function_clocking = (a == 0 || b == 0);
      options.opt2_conditional = (a == 1 || b == 1);
      options.opt3_averaging = (a == 2 || b == 2);
      options.opt4_loops = (a == 3 || b == 3);
      ir::Module m = testing::make_random_module(GetParam());
      ClockAssignment assignment;
      compute_assignment(m, options, assignment);
      for (ir::FuncId f = 0; f < m.functions().size(); ++f) {
        if (assignment.is_clocked(f)) continue;
        const DivergenceReport report = sample_clock_divergence(m, assignment, f, 16, 256, GetParam());
        EXPECT_LE(report.max_relative, 0.45)
            << "opts " << a << "+" << b << " function @" << m.function(f).name();
        for (const BlockClockInfo& info : assignment.funcs[f].blocks) EXPECT_GE(info.clock, 0);
      }
    }
  }
}

TEST_P(PipelineProperty, ClocksNeverNegative) {
  ir::Module m = testing::make_random_module(GetParam());
  ClockAssignment assignment;
  compute_assignment(m, PassOptions::all(), assignment);
  for (const FunctionClocks& fc : assignment.funcs) {
    for (const BlockClockInfo& info : fc.blocks) {
      EXPECT_GE(info.clock, 0);
      EXPECT_GE(info.original_cost, 0);
    }
  }
}

TEST_P(PipelineProperty, Opt2aAloneIsExact) {
  ir::Module m = testing::make_random_module(GetParam());
  PassOptions options;
  options.opt2_conditional = true;
  // Restrict to part a by setting the 2b divergence budget to zero (2b's
  // precise case is also exact, so allow it too -- both are documented as
  // precise).
  options.opt2b_max_divergence = 0.0;
  ClockAssignment assignment;
  compute_assignment(m, options, assignment);
  for (ir::FuncId f = 0; f < m.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;
    const DivergenceReport report = sample_clock_divergence(m, assignment, f, 32, 512, GetParam());
    EXPECT_EQ(report.max_absolute, 0) << "function @" << m.function(f).name();
  }
}

TEST_P(PipelineProperty, NoOptConfigurationIsExact) {
  ir::Module m = testing::make_random_module(GetParam());
  ClockAssignment assignment;
  compute_assignment(m, PassOptions::none(), assignment);
  for (ir::FuncId f = 0; f < m.functions().size(); ++f) {
    const DivergenceReport report = sample_clock_divergence(m, assignment, f, 16, 512, GetParam());
    EXPECT_EQ(report.max_absolute, 0);
  }
}

TEST_P(PipelineProperty, FullOptimizationDivergenceBounded) {
  ir::Module m = testing::make_random_module(GetParam());
  ClockAssignment assignment;
  compute_assignment(m, PassOptions::all(), assignment);
  for (ir::FuncId f = 0; f < m.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;
    const DivergenceReport report = sample_clock_divergence(m, assignment, f, 32, 512, GetParam());
    // Opt1/Opt3 tolerate range <= mean/2.5 (40% one-sided), Opt2b < 10%,
    // Opt4 one latch per loop.  Across a whole walk the relative error is
    // bounded well under the worst single-region tolerance; use the 2.5
    // criterion as the envelope.
    EXPECT_LE(report.max_relative, 0.45) << "function @" << m.function(f).name();
  }
}

TEST_P(PipelineProperty, OptimizationsNeverAddClockSites) {
  ir::Module m1 = testing::make_random_module(GetParam());
  ir::Module m2 = testing::make_random_module(GetParam());
  ClockAssignment a1, a2;
  const PipelineStats s1 = compute_assignment(m1, PassOptions::none(), a1);
  const PipelineStats s2 = compute_assignment(m2, PassOptions::all(), a2);
  // With Opt1 on, clocked functions keep zero sites AND their call sites
  // fold estimates into existing block updates, so total sites shrink
  // (weakly).  Compare apples to apples through the stats counters.
  EXPECT_LE(s2.clock_sites_final, s2.clock_sites_initial);
  EXPECT_EQ(s1.clock_sites_final, s1.clock_sites_initial);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace detlock::pass
