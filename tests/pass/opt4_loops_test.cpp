// Optimization 4 (Loops), paper Sec. IV-D.
#include <gtest/gtest.h>

#include "pass/conservation.hpp"
#include "pass/opt4_loops.hpp"
#include "pass/pass_test_util.hpp"

namespace detlock::pass {
namespace {

using testing::clock_of;
using testing::prepare;
using testing::Prepared;

// for-loop shape: header h (heavy: load-based bound check), latch inc
// (light), body.
const char* kForLoop = R"(
func @f(1) {
block entry:
  br h
block h:
  %1 = load %0
  %2 = icmp lt %0, %1
  condbr %2, body, x
block body:
  %3 = add %0, %0
  br inc
block inc:
  %4 = add %0, %0
  br h
block x:
  ret
}
)";

TEST(Opt4, MergesLightLatchIntoHeavierHeader) {
  const Prepared p = prepare(kForLoop, PassOptions::only_opt4());
  // h = load(3)+icmp(1)+condbr(1) = 5; inc = add(1)+br(1) = 2 < 5 and
  // < threshold -> merged: h = 7, inc = 0.
  EXPECT_EQ(clock_of(p, "f", "h"), 7);
  EXPECT_EQ(clock_of(p, "f", "inc"), 0);
  EXPECT_EQ(p.stats.opt4_merges, 1u);
}

TEST(Opt4, DivergenceIsAtMostOneLatchCost) {
  const Prepared p = prepare(kForLoop, PassOptions::only_opt4());
  // The final header evaluation (loop exit) over-counts by one latch cost.
  const DivergenceReport report =
      sample_clock_divergence(p.module, p.assignment, p.module.find_function("f"), 128, 256, 31);
  EXPECT_LE(report.max_absolute, 2);  // one latch = 2
}

TEST(Opt4, RefusesLatchHeavierThanHeader) {
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  br h
block h:
  %1 = icmp lt %0, %0
  condbr %1, body, x
block body:
  br inc
block inc:
  %2 = add %0, %0
  %3 = add %2, %0
  %4 = add %3, %0
  br h
block x:
  ret
}
)",
                             PassOptions::only_opt4());
  // latch = 4 >= header = 2: refused.
  EXPECT_EQ(p.stats.opt4_merges, 0u);
  EXPECT_EQ(clock_of(p, "f", "inc"), 4);
}

TEST(Opt4, RefusesLatchAboveThreshold) {
  std::string fat;
  for (int i = 0; i < 20; ++i) fat += "  %9 = add %0, %0\n";
  std::string heavy_header;
  for (int i = 0; i < 30; ++i) heavy_header += "  %8 = add %0, %0\n";
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  br h
block h:
)" + heavy_header + R"(
  %1 = icmp lt %0, %0
  condbr %1, inc, x
block inc:
)" + fat + R"(
  br h
block x:
  ret
}
)",
                             PassOptions::only_opt4());
  // latch = 21 >= default threshold 16 even though < header: refused.
  EXPECT_EQ(p.stats.opt4_merges, 0u);
}

TEST(Opt4, ThresholdIsConfigurable) {
  PassOptions options = PassOptions::only_opt4();
  options.opt4_threshold = 100;
  std::string fat;
  for (int i = 0; i < 20; ++i) fat += "  %9 = add %0, %0\n";
  std::string heavy_header;
  for (int i = 0; i < 30; ++i) heavy_header += "  %8 = add %0, %0\n";
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  br h
block h:
)" + heavy_header + R"(
  %1 = icmp lt %0, %0
  condbr %1, inc, x
block inc:
)" + fat + R"(
  br h
block x:
  ret
}
)",
                             options);
  EXPECT_EQ(p.stats.opt4_merges, 1u);
}

TEST(Opt4, RefusesLatchWithSyncOp) {
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  br h
block h:
  %1 = load %0
  %2 = icmp lt %0, %1
  condbr %2, inc, x
block inc:
  lock %0
  unlock %0
  br h
block x:
  ret
}
)",
                             PassOptions::only_opt4());
  EXPECT_EQ(p.stats.opt4_merges, 0u);
}

TEST(Opt4, SelfLoopNotMerged) {
  // A self-loop's latch IS its header; merging would be a no-op and the
  // strict < comparison refuses it.
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  br s
block s:
  %1 = icmp lt %0, %0
  condbr %1, s, x
block x:
  ret
}
)",
                             PassOptions::only_opt4());
  EXPECT_EQ(p.stats.opt4_merges, 0u);
}

TEST(Opt4, NestedLoopsEachMerge) {
  const Prepared p = prepare(R"(
func @f(1) {
block entry:
  br oh
block oh:
  %1 = load %0
  %2 = icmp lt %0, %1
  condbr %2, ih, x
block ih:
  %3 = load %0
  %4 = icmp lt %0, %3
  condbr %4, ib, oinc
block ib:
  br iinc
block iinc:
  %5 = add %0, %0
  br ih
block oinc:
  %6 = add %0, %0
  br oh
block x:
  ret
}
)",
                             PassOptions::only_opt4());
  EXPECT_EQ(p.stats.opt4_merges, 2u);
  EXPECT_EQ(clock_of(p, "f", "iinc"), 0);
  EXPECT_EQ(clock_of(p, "f", "oinc"), 0);
}

}  // namespace
}  // namespace detlock::pass
