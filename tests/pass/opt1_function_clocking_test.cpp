// Optimization 1 (Function Clocking), paper Fig. 4.
#include <gtest/gtest.h>

#include "pass/pass_test_util.hpp"

namespace detlock::pass {
namespace {

using testing::clock_of;
using testing::prepare;
using testing::Prepared;

TEST(Opt1, SingleBlockLeafIsClocked) {
  const Prepared p = prepare(R"(
func @leaf(1) {
block entry:
  %1 = add %0, %0
  %2 = mul %1, %0
  ret %2
}
func @main(1) {
block entry:
  %1 = call @leaf(%0)
  ret %1
}
)",
                             PassOptions::only_opt1());
  const ir::FuncId leaf = p.module.find_function("leaf");
  ASSERT_TRUE(p.assignment.is_clocked(leaf));
  // add(1) + mul(1) + ret(1) = 3.
  EXPECT_EQ(p.assignment.clocked_functions.at(leaf), 3);
  EXPECT_EQ(p.stats.clocked_functions, 1u);
  // Caller's entry carries its own cost + the callee estimate:
  // call(2) + ret(1) + estimate(3) = 6.
  EXPECT_EQ(clock_of(p, "main", "entry"), 6);
  // The clocked function's body carries no clocks.
  EXPECT_EQ(testing::total_clock(p, "leaf"), 0);
}

TEST(Opt1, BalancedDiamondLeafIsClocked) {
  const Prepared p = prepare(R"(
func @leaf(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
  %2 = add %0, %0
  br m
block e:
  %3 = sub %0, %0
  br m
block m:
  ret %0
}
func @main(1) {
block entry:
  %1 = call @leaf(%0)
  ret %1
}
)",
                             PassOptions::only_opt1());
  const ir::FuncId leaf = p.module.find_function("leaf");
  ASSERT_TRUE(p.assignment.is_clocked(leaf));
  // Both paths cost icmp+condbr + (add|sub)+br + ret = 2+2+1 = 5.
  EXPECT_EQ(p.assignment.clocked_functions.at(leaf), 5);
}

TEST(Opt1, UnbalancedDiamondRejectedByCriteria) {
  // One arm is ~20x the other: range > mean/2.5.
  std::string heavy;
  for (int i = 0; i < 40; ++i) heavy += "  %2 = add %0, %0\n";
  const Prepared p = prepare(R"(
func @leaf(1) {
block entry:
  %1 = icmp lt %0, %0
  condbr %1, t, e
block t:
)" + heavy + R"(
  br m
block e:
  br m
block m:
  ret %0
}
func @main(1) {
block entry:
  %1 = call @leaf(%0)
  ret %1
}
)",
                             PassOptions::only_opt1());
  EXPECT_FALSE(p.assignment.is_clocked(p.module.find_function("leaf")));
  EXPECT_EQ(p.stats.clocked_functions, 0u);
}

TEST(Opt1, LoopsRejectClockability) {
  const Prepared p = prepare(R"(
func @leaf(1) {
block entry:
  br h
block h:
  condbr %0, b, x
block b:
  br h
block x:
  ret %0
}
func @main(1) {
block entry:
  %1 = call @leaf(%0)
  ret %1
}
)",
                             PassOptions::only_opt1());
  EXPECT_FALSE(p.assignment.is_clocked(p.module.find_function("leaf")));
}

TEST(Opt1, RecursionRejected) {
  const Prepared p = prepare(R"(
func @r(1) {
block entry:
  %1 = call @r(%0)
  ret %1
}
func @main(1) {
block entry:
  %1 = call @r(%0)
  ret %1
}
)",
                             PassOptions::only_opt1());
  EXPECT_FALSE(p.assignment.is_clocked(p.module.find_function("r")));
}

TEST(Opt1, SyncOpsRejectClockability) {
  const Prepared p = prepare(R"(
func @locker(1) {
block entry:
  lock %0
  unlock %0
  ret
}
func @main(1) {
block entry:
  %1 = call @locker(%0)
  ret
}
)",
                             PassOptions::only_opt1());
  EXPECT_FALSE(p.assignment.is_clocked(p.module.find_function("locker")));
}

TEST(Opt1, SpawnTargetsNeverClocked) {
  // @child is a perfect leaf, but it runs on another thread: charging its
  // cost to the spawner would freeze the child's clock.
  const Prepared p = prepare(R"(
func @child(1) {
block entry:
  %1 = add %0, %0
  ret %1
}
func @main(1) {
block entry:
  %1 = spawn @child(%0)
  join %1
  %2 = call @child(%0)
  ret %2
}
)",
                             PassOptions::only_opt1());
  EXPECT_FALSE(p.assignment.is_clocked(p.module.find_function("child")));
}

TEST(Opt1, UncalledFunctionNotClocked) {
  const Prepared p = prepare(R"(
func @orphan(1) {
block entry:
  %1 = add %0, %0
  ret %1
}
func @main(1) {
block entry:
  ret %0
}
)",
                             PassOptions::only_opt1());
  EXPECT_FALSE(p.assignment.is_clocked(p.module.find_function("orphan")));
}

TEST(Opt1, FixedPointClocksCallersOfClockedFunctions) {
  // Paper: "it is also possible to clock functions which call only clocked
  // functions".  @mid is not a leaf but becomes clocked in sweep 2.
  const Prepared p = prepare(R"(
func @leaf(1) {
block entry:
  %1 = add %0, %0
  ret %1
}
func @mid(1) {
block entry:
  %1 = call @leaf(%0)
  %2 = call @leaf(%1)
  ret %2
}
func @main(1) {
block entry:
  %1 = call @mid(%0)
  ret %1
}
)",
                             PassOptions::only_opt1());
  const ir::FuncId leaf = p.module.find_function("leaf");
  const ir::FuncId mid = p.module.find_function("mid");
  ASSERT_TRUE(p.assignment.is_clocked(leaf));
  ASSERT_TRUE(p.assignment.is_clocked(mid));
  // leaf = add+ret = 2; mid = 2*call(2) + ret(1) + 2*leaf(2) = 9.
  EXPECT_EQ(p.assignment.clocked_functions.at(leaf), 2);
  EXPECT_EQ(p.assignment.clocked_functions.at(mid), 9);
  // main: call(2) + ret(1) + mid(9) = 12.
  EXPECT_EQ(clock_of(p, "main", "entry"), 12);
}

TEST(Opt1, CalleeWithUnclockedCalleeRejected) {
  const Prepared p = prepare(R"(
extern @mystery(1) -> value unclocked

func @tainted(1) {
block entry:
  %1 = callx @mystery(%0)
  ret %1
}
func @main(1) {
block entry:
  %1 = call @tainted(%0)
  ret %1
}
)",
                             PassOptions::only_opt1());
  EXPECT_FALSE(p.assignment.is_clocked(p.module.find_function("tainted")));
}

TEST(Opt1, EstimatedExternDoesNotBlockClockability) {
  const Prepared p = prepare(R"(
extern @sin(1) -> value estimate base=45

func @mathy(1) {
block entry:
  %1 = callx @sin(%0)
  ret %1
}
func @main(1) {
block entry:
  %1 = call @mathy(%0)
  ret %1
}
)",
                             PassOptions::only_opt1());
  const ir::FuncId mathy = p.module.find_function("mathy");
  ASSERT_TRUE(p.assignment.is_clocked(mathy));
  // callx(2) + ret(1) + estimate(45) = 48.
  EXPECT_EQ(p.assignment.clocked_functions.at(mathy), 48);
}

TEST(Opt1, DynamicEstimateBlocksClockability) {
  // memset's cost depends on a runtime value: no static summary exists.
  const Prepared p = prepare(R"(
extern @memset(3) estimate base=8 per_unit=2 size_arg=2

func @zeroer(1) {
block entry:
  %1 = callx @memset(%0, %0, %0)
  ret
}
func @main(1) {
block entry:
  %1 = call @zeroer(%0)
  ret
}
)",
                             PassOptions::only_opt1());
  EXPECT_FALSE(p.assignment.is_clocked(p.module.find_function("zeroer")));
}

TEST(Opt1, DisabledWhenOptionOff) {
  const Prepared p = prepare(R"(
func @leaf(1) {
block entry:
  ret %0
}
func @main(1) {
block entry:
  %1 = call @leaf(%0)
  ret %1
}
)",
                             PassOptions::none());
  EXPECT_TRUE(p.assignment.clocked_functions.empty());
}

}  // namespace
}  // namespace detlock::pass
