// Direct tests of per-block cost analysis (the bridge between IR and clock
// values).
#include "pass/costs.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"

namespace detlock::pass {
namespace {

BlockClockInfo analyze(const char* text, const ClockAssignment& assignment = {},
                       const char* func = "f", const char* block = "entry") {
  static ir::Module module;  // NOLINT: overwritten every call
  module = ir::parse_module(text);
  const ir::FuncId f = module.find_function(func);
  const ir::BlockId b = module.function(f).find_block(block);
  const ir::CostModel cost_model;
  return analyze_block(module, assignment, module.function(f).block(b), cost_model);
}

TEST(Costs, StraightLineSumsInstructionCosts) {
  const BlockClockInfo info = analyze(R"(
func @f(1) {
block entry:
  %1 = add %0, %0
  %2 = mul %1, %1
  %3 = div %2, %1
  %4 = load %3
  store %4, %3
  ret
}
)");
  // add(1) + mul(1) + div(20) + load(3) + store(2) + ret(1) = 28.
  EXPECT_EQ(info.original_cost, 28);
  EXPECT_TRUE(info.movable());
}

TEST(Costs, UnclockedCallPinsBlock) {
  const BlockClockInfo info = analyze(R"(
func @g(0) {
block entry:
  ret
}
func @f(0) {
block entry:
  %0 = call @g()
  ret
}
)");
  EXPECT_TRUE(info.has_unclocked_call);
  EXPECT_FALSE(info.movable());
}

TEST(Costs, ClockedCalleeFoldsEstimate) {
  ir::Module m = ir::parse_module(R"(
func @g(0) {
block entry:
  ret
}
func @f(0) {
block entry:
  %0 = call @g()
  ret
}
)");
  ClockAssignment assignment;
  assignment.clocked_functions.emplace(m.find_function("g"), 17);
  const ir::CostModel cost_model;
  const BlockClockInfo info =
      analyze_block(m, assignment, m.function(m.find_function("f")).block(0), cost_model);
  EXPECT_FALSE(info.has_unclocked_call);
  // call(2) + ret(1) + estimate(17) = 20.
  EXPECT_EQ(info.original_cost, 20);
}

TEST(Costs, StaticExternEstimateFolds) {
  const BlockClockInfo info = analyze(R"(
extern @sin(1) -> value estimate base=45

func @f(1) {
block entry:
  %1 = callx @sin(%0)
  ret %1
}
)");
  EXPECT_EQ(info.original_cost, 2 + 1 + 45);
  EXPECT_TRUE(info.movable());
}

TEST(Costs, DynamicExternPinsWithoutStaticBase) {
  const BlockClockInfo info = analyze(R"(
extern @memset(3) estimate base=8 per_unit=2 size_arg=2

func @f(1) {
block entry:
  %1 = callx @memset(%0, %0, %0)
  ret
}
)");
  EXPECT_TRUE(info.has_dynamic_estimate);
  EXPECT_FALSE(info.movable());
  // Dispatch + ret only: base/per_unit go into the pinned kClockAddDyn.
  EXPECT_EQ(info.original_cost, 3);
}

TEST(Costs, UnclockedExternPins) {
  const BlockClockInfo info = analyze(R"(
extern @mystery(0) unclocked

func @f(0) {
block entry:
  %0 = callx @mystery()
  ret
}
)");
  EXPECT_TRUE(info.has_unclocked_call);
}

TEST(Costs, EverySyncOpSetsTheFlag) {
  for (const char* body : {"  lock %0", "  unlock %0", "  %1 = const 2\n  barrier %0, %1",
                           "  condsignal %0", "  condbroadcast %0", "  join %0"}) {
    const std::string text = std::string("func @f(1) {\nblock entry:\n") + body + "\n  ret\n}\n";
    ir::Module m = ir::parse_module(text);
    const ClockAssignment assignment;
    const ir::CostModel cost_model;
    const BlockClockInfo info = analyze_block(m, assignment, m.functions()[0].block(0), cost_model);
    EXPECT_TRUE(info.has_sync) << body;
    EXPECT_FALSE(info.movable()) << body;
  }
}

}  // namespace
}  // namespace detlock::pass
