// The paper's worked example (Figs. 3 -> 13), as assertions.
//
// The example CFG mirrors the paper's Radiosity excerpt: a loop over work
// items whose body calls a diamond-shaped leaf (@intersection_type), runs a
// short-circuit conditional (if.end21 / lor.lhs.false23 / if.then28 /
// for.inc), and increments through a light latch.  Each optimization is
// applied alone and its characteristic effect checked block-by-block.
#include <gtest/gtest.h>

#include "pass/conservation.hpp"
#include "interp/engine.hpp"
#include "pass/pass_test_util.hpp"

namespace detlock::pass {
namespace {

using testing::clock_of;
using testing::prepare;
using testing::Prepared;

const char* kExample = R"(
func @intersection_type(2) {
block entry:
  %2 = mul %0, %1
  %3 = add %2, %0
  %4 = icmp lt %3, %1
  condbr %4, if.then.i, if.else.i
block if.then.i:
  %5 = add %3, %0
  %6 = mul %5, %1
  br merge.i
block if.else.i:
  %7 = sub %3, %0
  %8 = mul %7, %1
  br merge.i
block merge.i:
  %9 = and %6, %8
  ret %9
}

func @example(2) regs=32 {
block entry:
  %2 = const 0
  %3 = const 0
  br for.cond
block for.cond:
  %4 = const 40
  %5 = load %4
  %6 = icmp lt %3, %5
  condbr %6, if.end21, for.end
block if.end21:
  %7 = call @intersection_type(%3, %0)
  %8 = icmp gt %7, %1
  condbr %8, lor.lhs.false23, if.then28
block lor.lhs.false23:
  %9 = mul %7, %7
  %10 = add %9, %0
  %11 = mul %10, %7
  %12 = add %11, %1
  %13 = mul %12, %12
  %14 = add %13, %7
  %15 = icmp lt %14, %0
  condbr %15, if.then28, for.inc
block if.then28:
  %16 = add %2, %7
  %2 = and %16, %1
  br for.inc
block for.inc:
  %17 = const 1
  %3 = add %3, %17
  br for.cond
block for.end:
  ret %2
}

func @main(2) {
block entry:
  %2 = call @example(%0, %1)
  ret %2
}
)";

TEST(ExampleWalkthrough, BaselineEveryBlockCarriesItsCost) {
  const Prepared p = prepare(kExample, PassOptions::none());
  // @intersection_type: entry mul+add+icmp+condbr = 4; arms 3; merge 2.
  EXPECT_EQ(clock_of(p, "intersection_type", "entry"), 4);
  EXPECT_EQ(clock_of(p, "intersection_type", "if.then.i"), 3);
  EXPECT_EQ(clock_of(p, "intersection_type", "merge.i"), 2);
  // @example for.cond: const + load(3) + icmp + condbr = 6.
  EXPECT_EQ(clock_of(p, "example", "for.cond"), 6);
  EXPECT_EQ(clock_of(p, "example", "for.inc"), 3);
  // if.end21 contains a call to a (not yet clocked) function: pinned.
  const ir::FuncId example = p.module.find_function("example");
  const ir::BlockId if_end = p.module.function(example).find_block("if.end21");
  EXPECT_TRUE(p.assignment.funcs[example][if_end].has_unclocked_call);
}

TEST(ExampleWalkthrough, Opt1ClocksTheLeafAndChargesCallSite) {
  const Prepared p = prepare(kExample, PassOptions::only_opt1());
  const ir::FuncId leaf = p.module.find_function("intersection_type");
  ASSERT_TRUE(p.assignment.is_clocked(leaf));
  // Both leaf paths cost 4+3+2 = 9.
  EXPECT_EQ(p.assignment.clocked_functions.at(leaf), 9);
  // if.end21's clock now includes call(2) + icmp + condbr + estimate(9) = 13
  // and is no longer pinned.
  EXPECT_EQ(clock_of(p, "example", "if.end21"), 13);
  const ir::FuncId example = p.module.find_function("example");
  const ir::BlockId if_end = p.module.function(example).find_block("if.end21");
  EXPECT_FALSE(p.assignment.funcs[example][if_end].has_unclocked_call);
  // @example itself stays unclocked (it has a loop), @main stays pinned
  // only until the leaf... main calls example which is unclocked: pinned.
  EXPECT_FALSE(p.assignment.is_clocked(example));
}

TEST(ExampleWalkthrough, Opt2aCollapsesLeafDiamondUpward) {
  const Prepared p = prepare(kExample, PassOptions::only_opt2());
  // Inside the leaf: merge.i pushes its 2 into both arms (their only
  // successor), then entry absorbs min(5, 5): entry 9, everything else 0.
  EXPECT_EQ(clock_of(p, "intersection_type", "entry"), 9);
  EXPECT_EQ(clock_of(p, "intersection_type", "if.then.i"), 0);
  EXPECT_EQ(clock_of(p, "intersection_type", "if.else.i"), 0);
  EXPECT_EQ(clock_of(p, "intersection_type", "merge.i"), 0);
  // Part a is precise.
  const DivergenceReport r = sample_clock_divergence(
      p.module, p.assignment, p.module.find_function("intersection_type"), 64, 64, 3);
  EXPECT_EQ(r.max_absolute, 0);
}

TEST(ExampleWalkthrough, Opt2bRespectsTheDivergenceBound) {
  // With O1 folding the call, the Fig. 10 pattern matches at U=if.end21,
  // M=lor.lhs.false23, L=if.then28.  After Opt2a's precise rearrangement
  // (for.cond absorbs 1), moving L's clock (3) would diverge by
  // 3 / (U=12 + M=8) = 14% -- ABOVE the paper's 1/10 bound, so the move is
  // refused and if.then28 keeps its clock.
  PassOptions options = PassOptions::only_opt1();
  options.opt2_conditional = true;
  const Prepared refused = prepare(kExample, options);
  EXPECT_EQ(clock_of(refused, "example", "if.then28"), 3);
  EXPECT_EQ(clock_of(refused, "example", "if.end21"), 12);

  // Relaxing the bound past 14% lets the up-move through: if.then28's
  // clock lifts into if.end21 (incremented ahead of time).
  options.opt2b_max_divergence = 0.2;
  const Prepared applied = prepare(kExample, options);
  EXPECT_EQ(clock_of(applied, "example", "if.then28"), 0);
  EXPECT_EQ(clock_of(applied, "example", "if.end21"), 15);
}

TEST(ExampleWalkthrough, Opt3AveragesTheLeafPaths) {
  const Prepared p = prepare(kExample, PassOptions::only_opt3());
  // Both leaf paths cost 9: averaging collapses the leaf body to one site.
  EXPECT_EQ(clock_of(p, "intersection_type", "entry"), 9);
  EXPECT_EQ(testing::clock_sites(p, "intersection_type"), 1u);
}

TEST(ExampleWalkthrough, Opt4MergesForIncIntoForCond) {
  const Prepared p = prepare(kExample, PassOptions::only_opt4());
  // for.inc (3) < for.cond (6) and below threshold: merged (paper Fig. 13).
  EXPECT_EQ(clock_of(p, "example", "for.inc"), 0);
  EXPECT_EQ(clock_of(p, "example", "for.cond"), 9);
}

TEST(ExampleWalkthrough, AllOptimizationsMinimizeSitesWithBoundedDivergence) {
  const Prepared unopt = prepare(kExample, PassOptions::none());
  const Prepared p = prepare(kExample, PassOptions::all());
  const ir::FuncId example = p.module.find_function("example");

  // Far fewer update sites overall (leaf body gone entirely).
  std::size_t total_sites = 0;
  for (ir::FuncId f = 0; f < p.module.functions().size(); ++f) {
    if (!p.assignment.is_clocked(f)) total_sites += p.assignment.funcs[f].nonzero_sites();
  }
  std::size_t unopt_sites = 0;
  for (ir::FuncId f = 0; f < unopt.module.functions().size(); ++f) {
    unopt_sites += unopt.assignment.funcs[f].nonzero_sites();
  }
  EXPECT_LT(total_sites, unopt_sites);

  // Divergence stays within the paper's acceptance envelope.
  const DivergenceReport r = sample_clock_divergence(p.module, p.assignment, example, 128, 2048, 11);
  EXPECT_LT(r.max_relative, 0.2);
}

TEST(ExampleWalkthrough, MaterializedExampleRunsDeterministically) {
  // End-to-end sanity on the walkthrough module itself.
  auto run = [&] {
    ir::Module module = ir::parse_module(kExample);
    instrument_module(module, PassOptions::all());
    interp::EngineConfig config;
    interp::Engine engine(module, config);
    return engine.run("main", {3, 5}).main_return;
  };
  const std::int64_t a = run();
  EXPECT_EQ(a, run());
}

}  // namespace
}  // namespace detlock::pass
