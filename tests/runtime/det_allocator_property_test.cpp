// Allocator property test: random alloc/free sequences cross-checked
// against a reference model (a word-granular occupancy bitmap).  Verifies
// no overlap, containment, reuse correctness, and full coalescing back to
// one free range.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "runtime/det_allocator.hpp"
#include "runtime/det_backend.hpp"
#include "support/prng.hpp"

namespace detlock::runtime {
namespace {

constexpr std::int64_t kBase = 16;
constexpr std::int64_t kWords = 4096;

class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorProperty, RandomWorkloadMatchesReferenceModel) {
  RuntimeConfig config;
  config.record_trace = false;
  DetBackend backend(config);
  const ThreadId self = backend.register_main_thread();
  backend.clock_add(self, 1);
  DetAllocator alloc(backend, 4095, kBase, kWords);

  Xoshiro256 prng(GetParam());
  std::vector<bool> occupied(static_cast<std::size_t>(kBase + kWords), false);
  std::map<std::int64_t, std::int64_t> live;  // addr -> words
  std::int64_t live_words = 0;

  for (int step = 0; step < 3000; ++step) {
    const bool do_alloc = live.empty() || prng.next_below(100) < 55;
    if (do_alloc) {
      const std::int64_t want = 1 + static_cast<std::int64_t>(prng.next_below(64));
      const std::int64_t addr = alloc.allocate(self, want);
      if (addr == 0) {
        // Failure is only acceptable under genuine pressure or
        // fragmentation; with <= live+want <= kWords it may still fail due
        // to fragmentation, but never when the heap is empty.
        EXPECT_FALSE(live.empty() && want <= kWords);
        continue;
      }
      ASSERT_GE(addr, kBase);
      ASSERT_LE(addr + want, kBase + kWords);
      for (std::int64_t a = addr; a < addr + want; ++a) {
        ASSERT_FALSE(occupied[static_cast<std::size_t>(a)]) << "overlap at " << a;
        occupied[static_cast<std::size_t>(a)] = true;
      }
      live.emplace(addr, want);
      live_words += want;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(prng.next_below(live.size())));
      for (std::int64_t a = it->first; a < it->first + it->second; ++a) {
        occupied[static_cast<std::size_t>(a)] = false;
      }
      live_words -= it->second;
      alloc.deallocate(self, it->first);
      live.erase(it);
    }
    ASSERT_EQ(alloc.stats().live_words, live_words);
    ASSERT_EQ(alloc.live_blocks(), live.size());
  }

  // Free the rest: the heap must coalesce back into one max-size block.
  for (const auto& [addr, words] : live) alloc.deallocate(self, addr);
  const std::int64_t whole = alloc.allocate(self, kWords);
  EXPECT_EQ(whole, kBase);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace detlock::runtime
