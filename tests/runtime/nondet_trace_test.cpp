#include <gtest/gtest.h>

#include <thread>

#include "runtime/nondet_backend.hpp"
#include "runtime/trace.hpp"

namespace detlock::runtime {
namespace {

TEST(NondetBackend, BasicLockBarrierJoin) {
  RuntimeConfig c;
  c.max_threads = 4;
  NondetBackend b(c);
  const ThreadId main_t = b.register_main_thread();
  const ThreadId w = b.register_spawn(main_t);
  std::thread t([&] {
    b.lock(w, 1);
    b.clock_add(w, 10);
    b.unlock(w, 1);
    b.barrier_wait(w, 0, 2);
    b.thread_finish(w);
  });
  b.barrier_wait(main_t, 0, 2);
  b.join(main_t, w);
  t.join();
  b.thread_finish(main_t);
  EXPECT_EQ(b.stats().lock_acquires, 1u);
  EXPECT_EQ(b.clock_of(w), 10u);  // local accumulation still works
}

TEST(NondetBackend, UnlockOfBadMutexThrows) {
  RuntimeConfig c;
  NondetBackend b(c);
  b.register_main_thread();
  EXPECT_THROW(b.unlock(0, 1u << 20), Error);
}

TEST(RunTrace, FingerprintIsOrderSensitive) {
  RunTrace a, b;
  a.record_acquire(0, 1, 10);
  a.record_acquire(1, 1, 20);
  b.record_acquire(1, 1, 20);
  b.record_acquire(0, 1, 10);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.acquire_count(), 2u);
}

TEST(RunTrace, KeepsEventsWhenAsked) {
  RunTrace t(/*keep_events=*/true);
  t.record_acquire(2, 7, 99);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].thread, 2u);
  EXPECT_EQ(events[0].mutex, 7u);
  EXPECT_EQ(events[0].clock, 99u);
}

TEST(RunTrace, EventsEmptyByDefault) {
  RunTrace t;
  t.record_acquire(0, 0, 0);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.acquire_count(), 1u);
}

}  // namespace
}  // namespace detlock::runtime
