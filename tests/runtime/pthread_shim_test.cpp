// The pthread-compatible shim surface (paper Sec. III-B's header
// replacement).
#include "runtime/pthread_shim.hpp"

#include <gtest/gtest.h>

namespace detlock::runtime::shim {
namespace {

struct WorkerArgs {
  det_pthread_mutex_t* mutex;
  long* counter;
  int iters;
  int tid;
};

void* counter_worker(void* arg) {
  auto* a = static_cast<WorkerArgs*>(arg);
  for (int i = 0; i < a->iters; ++i) {
    det_tick(40 + static_cast<std::uint64_t>(a->tid) * 3);
    det_pthread_mutex_lock(a->mutex);
    *a->counter += 1;
    det_pthread_mutex_unlock(a->mutex);
  }
  return nullptr;
}

TEST(PthreadShim, PthreadShapedProgramIsDeterministic) {
  auto run = [] {
    det_runtime_start();
    det_pthread_mutex_t mutex;
    det_pthread_mutex_init(&mutex, nullptr);
    long counter = 0;

    det_pthread_t threads[3];
    WorkerArgs args[3];
    for (int t = 0; t < 3; ++t) {
      args[t] = WorkerArgs{&mutex, &counter, 40, t};
      det_pthread_create(&threads[t], nullptr, counter_worker, &args[t]);
    }
    for (int t = 0; t < 3; ++t) det_pthread_join(threads[t], nullptr);
    const std::uint64_t fingerprint = det_runtime_fingerprint();
    det_pthread_mutex_destroy(&mutex);
    det_runtime_stop();
    return std::make_pair(counter, fingerprint);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, 120);
  EXPECT_EQ(a, b);
}

TEST(PthreadShim, BarrierAndCondRoundTrip) {
  det_runtime_start();
  det_pthread_mutex_t mutex;
  det_pthread_cond_t cond;
  det_pthread_barrier_t barrier;
  det_pthread_mutex_init(&mutex, nullptr);
  det_pthread_cond_init(&cond, nullptr);
  det_pthread_barrier_init(&barrier, nullptr, 2);

  static det_pthread_mutex_t* s_mutex;
  static det_pthread_cond_t* s_cond;
  static det_pthread_barrier_t* s_barrier;
  static int s_stage;
  s_mutex = &mutex;
  s_cond = &cond;
  s_barrier = &barrier;
  s_stage = 0;

  det_pthread_t child;
  det_pthread_create(&child, nullptr,
                     [](void*) -> void* {
                       det_tick(25);
                       det_pthread_barrier_wait(s_barrier);
                       det_tick(25);
                       det_pthread_mutex_lock(s_mutex);
                       s_stage = 1;
                       det_pthread_cond_signal(s_cond);
                       det_pthread_mutex_unlock(s_mutex);
                       return nullptr;
                     },
                     nullptr);

  det_tick(10);
  det_pthread_barrier_wait(&barrier);
  det_tick(10);
  det_pthread_mutex_lock(&mutex);
  while (s_stage != 1) det_pthread_cond_wait(&cond, &mutex);
  det_pthread_mutex_unlock(&mutex);
  det_pthread_join(child, nullptr);
  EXPECT_EQ(s_stage, 1);
  det_runtime_stop();
}

TEST(PthreadShim, InitAllocatesDistinctIds) {
  det_runtime_start();
  det_pthread_mutex_t a, b;
  det_pthread_mutex_init(&a, nullptr);
  det_pthread_mutex_init(&b, nullptr);
  EXPECT_NE(a.id, b.id);
  det_runtime_stop();
}

TEST(PthreadShim, UseWithoutStartThrows) {
  // After stop, the runtime is gone.
  EXPECT_THROW(det_tick(1), Error);
}

}  // namespace
}  // namespace detlock::runtime::shim
