// DetBackend barrier and join semantics.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/det_backend.hpp"

namespace detlock::runtime {
namespace {

RuntimeConfig small_config() {
  RuntimeConfig c;
  c.max_threads = 8;
  return c;
}

TEST(DetBarrier, AllThreadsResumeAtMaxArrivalPlusOne) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId w1 = b.register_spawn(main_t);
  const ThreadId w2 = b.register_spawn(main_t);

  std::vector<std::uint64_t> resume_clock(3, 0);
  auto participant = [&](ThreadId self, std::uint64_t work) {
    b.clock_add(self, work);
    b.barrier_wait(self, 0, 3);
    resume_clock[self] = b.clock_of(self);
    b.thread_finish(self);
  };
  std::thread t1(participant, w1, 500);
  std::thread t2(participant, w2, 90);
  b.clock_add(main_t, 200);
  b.barrier_wait(main_t, 0, 3);
  resume_clock[main_t] = b.clock_of(main_t);
  t1.join();
  t2.join();
  b.thread_finish(main_t);

  // Arrivals: main 200, w1 501, w2 91 -> everyone resumes at 502.
  EXPECT_EQ(resume_clock[0], 502u);
  EXPECT_EQ(resume_clock[1], 502u);
  EXPECT_EQ(resume_clock[2], 502u);
}

TEST(DetBarrier, MultipleRoundsStayBalanced) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId w1 = b.register_spawn(main_t);

  std::vector<std::uint64_t> w1_clocks;
  std::thread t1([&] {
    for (int round = 0; round < 5; ++round) {
      b.clock_add(w1, 10 + static_cast<std::uint64_t>(round));
      b.barrier_wait(w1, 0, 2);
      w1_clocks.push_back(b.clock_of(w1));
    }
    b.thread_finish(w1);
  });
  std::vector<std::uint64_t> main_clocks;
  for (int round = 0; round < 5; ++round) {
    b.clock_add(main_t, 100);
    b.barrier_wait(main_t, 0, 2);
    main_clocks.push_back(b.clock_of(main_t));
  }
  t1.join();
  b.thread_finish(main_t);
  // After each round both threads share a clock.
  EXPECT_EQ(w1_clocks, main_clocks);
  // Clocks strictly increase per round.
  for (std::size_t i = 1; i < main_clocks.size(); ++i) EXPECT_GT(main_clocks[i], main_clocks[i - 1]);
}

TEST(DetBarrier, StrictModeRejectsSubsetBarriers) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId w1 = b.register_spawn(main_t);
  (void)w1;  // live but not participating: 1 participant != 2 live
  EXPECT_THROW(b.barrier_wait(main_t, 0, 1), Error);
}

TEST(DetBarrier, NonStrictModeAllowsSubset) {
  RuntimeConfig c = small_config();
  c.strict_barriers = false;
  DetBackend b(c);
  const ThreadId main_t = b.register_main_thread();
  const ThreadId w1 = b.register_spawn(main_t);
  (void)w1;
  b.clock_add(main_t, 3);
  b.barrier_wait(main_t, 0, 1);  // trivially releases
  EXPECT_EQ(b.clock_of(main_t), 4u);
}

TEST(DetBarrier, ZeroParticipantsRejected) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  EXPECT_THROW(b.barrier_wait(main_t, 0, 0), Error);
}

TEST(DetJoin, PostJoinClockIsMaxOfEntryAndChildFinal) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId child = b.register_spawn(main_t);  // clock 1
  std::thread t([&] {
    b.clock_add(child, 999);  // final clock 1000
    b.thread_finish(child);
  });
  b.clock_add(main_t, 10);
  b.join(main_t, child);
  t.join();
  // Entry clock 10 < child final 1000 -> resume at 1001, +1 join tick.
  EXPECT_EQ(b.clock_of(main_t), 1002u);
  b.thread_finish(main_t);
}

TEST(DetJoin, ChildAlreadyFinishedBelowJoinerKeepsJoinerClock) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId child = b.register_spawn(main_t);
  std::thread t([&] {
    b.clock_add(child, 3);  // final 4
    b.thread_finish(child);
  });
  t.join();  // physically finished before the join
  b.clock_add(main_t, 500);
  b.join(main_t, child);
  // Child final 4 < joiner 500: only the +1 join tick applies.
  EXPECT_EQ(b.clock_of(main_t), 501u);
  b.thread_finish(main_t);
}

TEST(DetJoin, PostJoinClockIsReproducible) {
  // The join protocol's promise: max(entry, final+1) regardless of physical
  // interleaving.  Run with the child artificially delayed vs not.
  auto run = [&](bool delay_child) {
    DetBackend b(small_config());
    const ThreadId main_t = b.register_main_thread();
    const ThreadId child = b.register_spawn(main_t);
    std::thread t([&] {
      if (delay_child) std::this_thread::sleep_for(std::chrono::milliseconds(30));
      b.clock_add(child, 200);
      b.thread_finish(child);
    });
    b.clock_add(main_t, 50);
    b.join(main_t, child);
    t.join();
    const std::uint64_t clock = b.clock_of(main_t);
    b.thread_finish(main_t);
    return clock;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(DetJoin, BadTargetThrows) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  EXPECT_THROW(b.join(main_t, main_t), Error);
  EXPECT_THROW(b.join(main_t, 99), Error);
}

TEST(DetSpawn, ChildClockSeededFromParent) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  b.clock_add(main_t, 41);
  const ThreadId child = b.register_spawn(main_t);
  EXPECT_EQ(child, 1u);
  EXPECT_EQ(b.clock_of(child), 42u);
}

TEST(DetSpawn, TooManyThreadsThrows) {
  RuntimeConfig c = small_config();
  c.max_threads = 2;
  DetBackend b(c);
  const ThreadId main_t = b.register_main_thread();
  b.register_spawn(main_t);
  EXPECT_THROW(b.register_spawn(main_t), Error);
}

}  // namespace
}  // namespace detlock::runtime
