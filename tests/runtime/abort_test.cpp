// Hang-freedom under aborts and injected faults: when the abort flag goes
// up -- externally, from a watchdog, or from a fault-killed thread -- every
// live thread must unwind with detlock::Error no matter which blocking
// operation it sits in (turn wait, mutex wait, barrier park, condvar wait,
// join), and the backend must stay inspectable (stats/trace) afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "runtime/det_backend.hpp"
#include "runtime/faultinject.hpp"
#include "runtime/nondet_backend.hpp"

namespace detlock::runtime {
namespace {

TEST(Abort, DetExternalAbortUnwindsEveryLiveWaiter) {
  RuntimeConfig c;
  c.max_threads = 8;
  std::atomic<bool> abort_flag{false};
  c.abort_flag = &abort_flag;
  DetBackend b(c);

  const ThreadId main_t = b.register_main_thread();
  // Main takes mutex 0 while it is still alone (the turn is trivially its)
  // and keeps it for the whole test: the lock waiter below can never win.
  b.lock(main_t, 0);
  const ThreadId w_lock = b.register_spawn(main_t);
  const ThreadId w_join = b.register_spawn(main_t);
  const ThreadId w_barrier = b.register_spawn(main_t);
  const ThreadId w_cv = b.register_spawn(main_t);
  // Push main's clock far above the workers': an idle minimum-clock thread
  // would otherwise hold the turn forever and the waiters under test would
  // all be stuck in the same turn wait instead of their own operations.
  b.clock_add(main_t, 1'000'000);

  std::atomic<int> unwound{0};
  auto run_guarded = [&](auto body) {
    return std::thread([&unwound, body] {
      try {
        body();
        ADD_FAILURE() << "worker returned instead of aborting";
      } catch (const Error&) {
        unwound.fetch_add(1, std::memory_order_relaxed);
      }
    });
  };
  std::thread t_lock = run_guarded([&] { b.lock(w_lock, 0); });
  std::thread t_join = run_guarded([&] { b.join(w_join, w_lock); });
  std::thread t_barrier = run_guarded([&] { b.barrier_wait(w_barrier, 0, 5); });
  std::thread t_cv = run_guarded([&] {
    b.lock(w_cv, 1);
    b.cond_wait(w_cv, 0, 1);  // no signal ever comes
  });

  // Let everyone sink into their blocking operation, then pull the flag.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  abort_flag.store(true, std::memory_order_release);
  t_lock.join();
  t_join.join();
  t_barrier.join();
  t_cv.join();
  EXPECT_EQ(unwound.load(), 4);

  // Post-abort the backend is still inspectable -- and still aborting.
  EXPECT_THROW(b.join(main_t, w_lock), Error);
  EXPECT_GE(b.stats().lock_acquires, 1u);
  (void)b.trace().fingerprint();
}

TEST(Abort, DetFaultDeathUnwindsAllSurvivors) {
  RuntimeConfig c;
  c.max_threads = 8;
  std::atomic<bool> abort_flag{false};
  c.abort_flag = &abort_flag;

  // Thread 2 dies at its first lock-acquired boundary: mid-critical-section
  // on mutex 0, which then stays held forever.
  FaultPlan plan;
  plan.die_thread = 2;
  plan.die_after_ops = 0;
  plan.die_point = static_cast<int>(SyncPoint::kLockAcquired);
  FaultInjector injector(plan, c.max_threads);
  c.fault = &injector;
  DetBackend b(c);

  const ThreadId main_t = b.register_main_thread();
  // Registration order fixes both thread ids and turn-tie priority: the
  // condvar waiter goes first so it is parked in its wait before the death.
  const ThreadId w_cv = b.register_spawn(main_t);
  const ThreadId w_dies = b.register_spawn(main_t);
  ASSERT_EQ(w_dies, plan.die_thread);
  const ThreadId w_join = b.register_spawn(main_t);
  const ThreadId w_barrier = b.register_spawn(main_t);
  const ThreadId w_lock = b.register_spawn(main_t);
  b.clock_add(main_t, 1'000'000);

  std::atomic<int> unwound{0};
  std::string death_message;
  std::thread t_cv([&] {
    try {
      b.lock(w_cv, 2);
      b.cond_wait(w_cv, 0, 2);
      ADD_FAILURE() << "condvar waiter returned";
    } catch (const Error&) {
      unwound.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread t_dies([&] {
    try {
      b.lock(w_dies, 0);
      ADD_FAILURE() << "the doomed thread survived its lock";
    } catch (const Error& e) {
      death_message = e.what();
      // The engine's thread wrapper does exactly this on an escaped
      // exception; backend-level drivers must mimic it.
      abort_flag.store(true, std::memory_order_release);
    }
  });
  std::thread t_join([&] {
    try {
      b.join(w_join, w_dies);
      ADD_FAILURE() << "joiner returned";
    } catch (const Error&) {
      unwound.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread t_barrier([&] {
    try {
      b.barrier_wait(w_barrier, 0, 6);
      ADD_FAILURE() << "barrier parker returned";
    } catch (const Error&) {
      unwound.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread t_lock([&] {
    try {
      b.lock(w_lock, 0);  // the mutex the dead thread holds
      ADD_FAILURE() << "lock waiter returned";
    } catch (const Error&) {
      unwound.fetch_add(1, std::memory_order_relaxed);
    }
  });

  t_cv.join();
  t_dies.join();
  t_join.join();
  t_barrier.join();
  t_lock.join();

  EXPECT_EQ(unwound.load(), 4) << "every survivor must unwind";
  EXPECT_NE(death_message.find("fault injected"), std::string::npos) << death_message;
  EXPECT_NE(death_message.find("thread 2"), std::string::npos) << death_message;
  EXPECT_EQ(injector.stats().deaths, 1u);
  EXPECT_GE(b.stats().lock_acquires, 1u);
  (void)b.trace().fingerprint();
}

TEST(Abort, NondetExternalAbortUnwindsEveryLiveWaiter) {
  RuntimeConfig c;
  c.max_threads = 8;
  std::atomic<bool> abort_flag{false};
  c.abort_flag = &abort_flag;
  NondetBackend b(c);

  const ThreadId main_t = b.register_main_thread();
  b.lock(main_t, 0);  // held for the whole test
  const ThreadId w_lock = b.register_spawn(main_t);
  const ThreadId w_join = b.register_spawn(main_t);
  const ThreadId w_barrier = b.register_spawn(main_t);
  const ThreadId w_cv = b.register_spawn(main_t);

  std::atomic<int> unwound{0};
  auto run_guarded = [&](auto body) {
    return std::thread([&unwound, body] {
      try {
        body();
        ADD_FAILURE() << "worker returned instead of aborting";
      } catch (const Error&) {
        unwound.fetch_add(1, std::memory_order_relaxed);
      }
    });
  };
  std::thread t_lock = run_guarded([&] { b.lock(w_lock, 0); });
  std::thread t_join = run_guarded([&] { b.join(w_join, w_lock); });
  std::thread t_barrier = run_guarded([&] { b.barrier_wait(w_barrier, 0, 5); });
  std::thread t_cv = run_guarded([&] {
    b.lock(w_cv, 1);
    b.cond_wait(w_cv, 0, 1);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  abort_flag.store(true, std::memory_order_release);
  t_lock.join();
  t_join.join();
  t_barrier.join();
  t_cv.join();
  EXPECT_EQ(unwound.load(), 4);
  EXPECT_GE(b.stats().lock_acquires, 1u);
}

}  // namespace
}  // namespace detlock::runtime
