// Watchdog tests in two halves: pure diagnosis over synthetic snapshots
// (deadlock vs. stall classification, report rendering), and the live
// monitor thread (fires on a frozen counter, stays quiet on a moving one,
// honors the report-only policy).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "runtime/clock_table.hpp"
#include "runtime/watchdog.hpp"

namespace detlock::runtime {
namespace {

ThreadSnapshot live_thread(ThreadId id, std::uint64_t clock, WaitReason reason,
                           std::uint64_t target) {
  ThreadSnapshot t;
  t.thread = id;
  t.phase = ThreadPhase::kLive;
  t.published_clock = clock;
  t.reason = reason;
  t.target = target;
  return t;
}

MutexSnapshot held_mutex(MutexId id, ThreadId holder, std::uint64_t release_time) {
  MutexSnapshot m;
  m.mutex = id;
  m.held = true;
  m.holder = holder;
  m.release_time = release_time;
  return m;
}

// The ABBA shape share/programs/abba_deadlock.dl produces: main joins
// thread 1; threads 1 and 2 each hold one mutex and wait on the other's.
StallSnapshot abba_snapshot() {
  StallSnapshot snap;
  snap.threads.push_back(live_thread(0, 10, WaitReason::kJoin, 1));
  snap.threads.push_back(live_thread(1, 120, WaitReason::kMutex, 1));
  snap.threads.push_back(live_thread(2, 95, WaitReason::kMutex, 0));
  snap.mutexes.push_back(held_mutex(0, 1, 4));
  snap.mutexes.push_back(held_mutex(1, 2, 0));
  return snap;
}

TEST(DiagnoseStall, AbbaCycleIsDeadlock) {
  const StallReport report = diagnose_stall(abba_snapshot(), 500);
  ASSERT_TRUE(report.deadlock);
  ASSERT_EQ(report.cycle.size(), 2u);
  // Deterministic presentation: the cycle starts at its smallest thread id.
  EXPECT_EQ(report.cycle[0], 1u);
  EXPECT_EQ(report.cycle[1], 2u);
}

TEST(DiagnoseStall, JoinCycleIsDeadlock) {
  StallSnapshot snap;
  snap.threads.push_back(live_thread(1, 5, WaitReason::kJoin, 2));
  snap.threads.push_back(live_thread(2, 6, WaitReason::kJoin, 1));
  const StallReport report = diagnose_stall(std::move(snap), 100);
  ASSERT_TRUE(report.deadlock);
  EXPECT_EQ(report.cycle, (std::vector<ThreadId>{1, 2}));
}

TEST(DiagnoseStall, TailIntoCycleReportsOnlyTheCycle) {
  // Thread 0 joins into the cycle but is not part of it.
  const StallReport report = diagnose_stall(abba_snapshot(), 500);
  ASSERT_TRUE(report.deadlock);
  EXPECT_EQ(std::count(report.cycle.begin(), report.cycle.end(), 0u), 0);
  // The joiner still shows up in the "other live threads" section.
  EXPECT_NE(report.text().find("joining thread 1"), std::string::npos) << report.text();
}

TEST(DiagnoseStall, CondvarWaitIsStallNotDeadlock) {
  // A lost wakeup: the waiter sits on a condvar, nobody holds anything.
  StallSnapshot snap;
  snap.threads.push_back(live_thread(0, 40, WaitReason::kJoin, 1));
  snap.threads.push_back(live_thread(1, 12, WaitReason::kCondVar, 3));
  const StallReport report = diagnose_stall(std::move(snap), 250);
  EXPECT_FALSE(report.deadlock);
  // Slowest live waiter = minimum published clock.
  EXPECT_EQ(report.slowest, 1u);
}

TEST(DiagnoseStall, MutexHeldByFinishedThreadIsStall) {
  // An abandoned mutex (holder died) cannot close a cycle.
  StallSnapshot snap;
  snap.threads.push_back(live_thread(1, 30, WaitReason::kMutex, 0));
  ThreadSnapshot dead;
  dead.thread = 2;
  dead.phase = ThreadPhase::kFinished;
  dead.published_clock = kClockInfinity;
  snap.threads.push_back(dead);
  snap.mutexes.push_back(held_mutex(0, 2, 7));
  const StallReport report = diagnose_stall(std::move(snap), 250);
  EXPECT_FALSE(report.deadlock);
  EXPECT_EQ(report.slowest, 1u);
}

TEST(DiagnoseStall, ParkedClockDoesNotWinSlowest) {
  // kClockInfinity (parked at a barrier) must lose the minimum-clock race
  // to any thread with a real published clock.
  StallSnapshot snap;
  snap.threads.push_back(live_thread(1, kClockInfinity, WaitReason::kBarrier, 0));
  snap.threads.push_back(live_thread(2, 77, WaitReason::kTurn, 0));
  const StallReport report = diagnose_stall(std::move(snap), 100);
  EXPECT_FALSE(report.deadlock);
  EXPECT_EQ(report.slowest, 2u);
}

TEST(StallReport, TextNamesVerdictAndCycleMembers) {
  StallReport report = diagnose_stall(abba_snapshot(), 500);
  report.progress_value = 42;
  const std::string text = report.text();
  EXPECT_NE(text.find("no sync progress for 500 ms"), std::string::npos) << text;
  EXPECT_NE(text.find("frozen at 42"), std::string::npos) << text;
  EXPECT_NE(text.find("DEADLOCK"), std::string::npos) << text;
  EXPECT_NE(text.find("thread 1 [clock 120] waiting on mutex 1 -- held by thread 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("thread 2 [clock 95] waiting on mutex 0 -- held by thread 1"
                      " (logical release time 4)"),
            std::string::npos)
      << text;
}

TEST(StallReport, JsonCarriesVerdictCycleThreadsAndMutexes) {
  StallReport report = diagnose_stall(abba_snapshot(), 500);
  report.progress_value = 42;
  const std::string json = report.json();
  EXPECT_NE(json.find("\"type\":\"deadlock\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cycle\":[1,2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"progress\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mutex\":0,\"held\":true,\"holder\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reason\":\"join\""), std::string::npos) << json;
}

TEST(StallReport, StallJsonReportsSlowest) {
  StallSnapshot snap;
  snap.threads.push_back(live_thread(1, 12, WaitReason::kCondVar, 3));
  StallReport report = diagnose_stall(std::move(snap), 250);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"type\":\"stall\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"slowest\":1"), std::string::npos) << json;
  EXPECT_NE(report.text().find("STALL/LIVELOCK"), std::string::npos);
}

// A StallSource returning a canned snapshot, standing in for a backend.
class FixedSource : public StallSource {
 public:
  explicit FixedSource(StallSnapshot snap) : snap_(std::move(snap)) {}
  StallSnapshot stall_snapshot() const override { return snap_; }

 private:
  StallSnapshot snap_;
};

bool wait_until_fired(const Watchdog& dog, std::chrono::milliseconds deadline) {
  const auto stop = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < stop) {
    if (dog.fired()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return dog.fired();
}

TEST(Watchdog, FiresOnFrozenCounterAndSetsAbortFlag) {
  std::atomic<bool> abort_flag{false};
  std::atomic<std::uint64_t> progress{7};
  WatchdogConfig config;
  config.window_ms = 60;
  config.abort_flag = &abort_flag;
  config.progress = &progress;
  FixedSource source(abba_snapshot());
  Watchdog dog(config, source);
  dog.start();
  ASSERT_TRUE(wait_until_fired(dog, std::chrono::seconds(10)));
  EXPECT_TRUE(abort_flag.load());
  const auto report = dog.report();
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->deadlock);
  EXPECT_EQ(report->cycle, (std::vector<ThreadId>{1, 2}));
  EXPECT_EQ(report->progress_value, 7u);
  dog.stop();
}

TEST(Watchdog, ReportOnlyPolicyLeavesAbortFlagClear) {
  std::atomic<bool> abort_flag{false};
  std::atomic<std::uint64_t> progress{0};
  WatchdogConfig config;
  config.window_ms = 60;
  config.abort_on_stall = false;
  config.abort_flag = &abort_flag;
  config.progress = &progress;
  FixedSource source(abba_snapshot());
  Watchdog dog(config, source);
  dog.start();
  ASSERT_TRUE(wait_until_fired(dog, std::chrono::seconds(10)));
  EXPECT_FALSE(abort_flag.load());
  dog.stop();
}

TEST(Watchdog, ProgressMotionHoldsFire) {
  std::atomic<bool> abort_flag{false};
  std::atomic<std::uint64_t> progress{0};
  WatchdogConfig config;
  config.window_ms = 80;
  config.abort_flag = &abort_flag;
  config.progress = &progress;
  FixedSource source(abba_snapshot());
  Watchdog dog(config, source);
  dog.start();
  // Keep bumping the counter for several windows: the watchdog must not fire.
  const auto stop_at = std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  while (std::chrono::steady_clock::now() < stop_at) {
    progress.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(dog.fired());
  dog.stop();
  EXPECT_FALSE(dog.fired());
  EXPECT_FALSE(dog.report().has_value());
}

TEST(Watchdog, ZeroWindowDisablesStart) {
  std::atomic<std::uint64_t> progress{0};
  WatchdogConfig config;
  config.window_ms = 0;
  config.progress = &progress;
  FixedSource source({});
  Watchdog dog(config, source);
  dog.start();  // no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(dog.fired());
  dog.stop();
}

TEST(Watchdog, StopIsIdempotentAndDestructorSafe) {
  std::atomic<std::uint64_t> progress{0};
  WatchdogConfig config;
  config.window_ms = 10'000;  // will never elapse within the test
  config.progress = &progress;
  FixedSource source({});
  Watchdog dog(config, source);
  dog.start();
  dog.stop();
  dog.stop();
  EXPECT_FALSE(dog.fired());
  // Destructor runs stop() again.
}

}  // namespace
}  // namespace detlock::runtime
