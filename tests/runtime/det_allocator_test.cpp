#include "runtime/det_allocator.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/det_backend.hpp"
#include "runtime/nondet_backend.hpp"

namespace detlock::runtime {
namespace {

struct Fixture {
  RuntimeConfig config;
  DetBackend backend;
  ThreadId main_t;
  DetAllocator alloc;

  explicit Fixture(std::int64_t heap_words = 1000)
      : config([] {
          RuntimeConfig c;
          c.max_threads = 8;
          return c;
        }()),
        backend(config),
        main_t(backend.register_main_thread()),
        alloc(backend, 4095, /*heap_base=*/16, heap_words) {}
};

TEST(DetAllocator, FirstFitSequentialAddresses) {
  Fixture f;
  const std::int64_t a = f.alloc.allocate(f.main_t, 10);
  const std::int64_t b = f.alloc.allocate(f.main_t, 20);
  EXPECT_EQ(a, 16);
  EXPECT_EQ(b, 26);
  EXPECT_EQ(f.alloc.live_blocks(), 2u);
}

TEST(DetAllocator, FreeAndReuse) {
  Fixture f;
  const std::int64_t a = f.alloc.allocate(f.main_t, 10);
  f.alloc.deallocate(f.main_t, a);
  const std::int64_t b = f.alloc.allocate(f.main_t, 10);
  EXPECT_EQ(a, b);  // first fit reuses the freed block
}

TEST(DetAllocator, CoalescesNeighbors) {
  Fixture f(100);
  const std::int64_t a = f.alloc.allocate(f.main_t, 30);
  const std::int64_t b = f.alloc.allocate(f.main_t, 30);
  const std::int64_t c = f.alloc.allocate(f.main_t, 40);
  (void)c;
  // Free a and c, then b: all three must coalesce into one 100-word range.
  f.alloc.deallocate(f.main_t, a);
  f.alloc.deallocate(f.main_t, c);
  f.alloc.deallocate(f.main_t, b);
  const std::int64_t big = f.alloc.allocate(f.main_t, 100);
  EXPECT_EQ(big, 16);
}

TEST(DetAllocator, ExhaustionReturnsZero) {
  Fixture f(50);
  EXPECT_NE(f.alloc.allocate(f.main_t, 50), 0);
  EXPECT_EQ(f.alloc.allocate(f.main_t, 1), 0);
  EXPECT_EQ(f.alloc.stats().failed_allocs, 1u);
}

TEST(DetAllocator, DoubleFreeThrows) {
  Fixture f;
  const std::int64_t a = f.alloc.allocate(f.main_t, 5);
  f.alloc.deallocate(f.main_t, a);
  EXPECT_THROW(f.alloc.deallocate(f.main_t, a), Error);
}

TEST(DetAllocator, FreeOfUnknownAddressThrows) {
  Fixture f;
  EXPECT_THROW(f.alloc.deallocate(f.main_t, 999), Error);
}

TEST(DetAllocator, NonPositiveSizeRejected) {
  Fixture f;
  EXPECT_THROW(f.alloc.allocate(f.main_t, 0), Error);
  EXPECT_THROW(f.alloc.allocate(f.main_t, -3), Error);
}

TEST(DetAllocator, StatsTrackPeak) {
  Fixture f;
  const std::int64_t a = f.alloc.allocate(f.main_t, 40);
  const std::int64_t b = f.alloc.allocate(f.main_t, 10);
  f.alloc.deallocate(f.main_t, a);
  EXPECT_EQ(f.alloc.stats().peak_live_words, 50);
  EXPECT_EQ(f.alloc.stats().live_words, 10);
  f.alloc.deallocate(f.main_t, b);
  EXPECT_EQ(f.alloc.stats().live_words, 0);
}

// The paper's point: with a deterministic internal lock, concurrent
// allocations return the same addresses in every run.
TEST(DetAllocator, ConcurrentAllocationAddressesAreDeterministic) {
  auto run = [] {
    Fixture f(100000);
    const ThreadId w1 = f.backend.register_spawn(f.main_t);
    const ThreadId w2 = f.backend.register_spawn(f.main_t);
    std::vector<std::int64_t> addrs1, addrs2;
    auto worker = [&](ThreadId self, std::vector<std::int64_t>* out, std::uint64_t work) {
      for (int i = 0; i < 30; ++i) {
        f.backend.clock_add(self, work);
        out->push_back(f.alloc.allocate(self, 8 + (self % 3)));
      }
      f.backend.thread_finish(self);
    };
    std::thread t1(worker, w1, &addrs1, 13);
    std::thread t2(worker, w2, &addrs2, 29);
    f.backend.join(f.main_t, w1);
    f.backend.join(f.main_t, w2);
    t1.join();
    t2.join();
    f.backend.thread_finish(f.main_t);
    addrs1.insert(addrs1.end(), addrs2.begin(), addrs2.end());
    return addrs1;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace detlock::runtime
