// Deterministic condition variables (the paper's named future work).
#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "runtime/det_backend.hpp"

namespace detlock::runtime {
namespace {

RuntimeConfig small_config() {
  RuntimeConfig c;
  c.max_threads = 8;
  return c;
}

TEST(DetCondVar, WaitRequiresHeldMutex) {
  DetBackend b(small_config());
  const ThreadId t = b.register_main_thread();
  EXPECT_THROW(b.cond_wait(t, 0, 0), Error);
}

TEST(DetCondVar, SignalOnNeverUsedCondVarIsNoOp) {
  DetBackend b(small_config());
  const ThreadId t = b.register_main_thread();
  b.clock_add(t, 1);
  EXPECT_NO_THROW(b.cond_signal(t, 5));
  EXPECT_NO_THROW(b.cond_broadcast(t, 5));
}

TEST(DetCondVar, SignalRequiresGuardMutexOnceKnown) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId child = b.register_spawn(main_t);
  b.clock_add(main_t, 1000);  // ahead of the child so it can take the lock
  std::thread waiter([&] {
    b.clock_add(child, 10);
    b.lock(child, 0);
    b.cond_wait(child, 0, 0);
    b.unlock(child, 0);
    b.thread_finish(child);
  });
  // Poll until the waiter has registered its guard mutex: an unlocked
  // signal is a silent no-op before that and an error afterwards.
  bool threw = false;
  for (int i = 0; i < 2000 && !threw; ++i) {
    try {
      b.cond_signal(main_t, 0);
    } catch (const Error&) {
      threw = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(threw) << "unlocked cond_signal was never rejected";
  // Proper signal releases the waiter.
  b.lock(main_t, 0);
  b.cond_signal(main_t, 0);
  b.unlock(main_t, 0);
  // Raw-backend test: advance past the child before the *physical* join so
  // its post-wake lock/unlock sequence is never turn-blocked on us (the
  // engine's kJoin does this via the logical join protocol).
  b.clock_add(main_t, 1000000);
  waiter.join();
  b.thread_finish(main_t);
}

TEST(DetCondVar, WakeupOrderIsQueueOrder) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId w1 = b.register_spawn(main_t);
  const ThreadId w2 = b.register_spawn(main_t);

  std::vector<ThreadId> wake_order;
  std::mutex order_mu;

  auto waiter = [&](ThreadId self, std::uint64_t work) {
    b.clock_add(self, work);
    b.lock(self, 0);
    b.cond_wait(self, 0, 0);
    {
      const std::lock_guard<std::mutex> g(order_mu);
      wake_order.push_back(self);
    }
    b.unlock(self, 0);
    b.thread_finish(self);
  };
  // w1 has the smaller clock: it acquires the mutex (and enqueues) first.
  std::thread t1(waiter, w1, 10);
  std::thread t2(waiter, w2, 500);

  // Wait until both are queued: signal twice, each time under the lock.
  // The clock_add per iteration models the instrumentation a real program
  // carries between synchronization operations; without it a re-locking
  // thread whose clock never moves deterministically starves the woken
  // waiters' re-acquisition (they chase its clock and always lose the
  // id tie at the decisive moment).
  b.clock_add(main_t, 10000);
  for (int signals = 0; signals < 2; ++signals) {
    bool delivered = false;
    while (!delivered) {
      b.clock_add(main_t, 100);
      b.lock(main_t, 0);
      b.cond_signal(main_t, 0);
      b.unlock(main_t, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      const std::lock_guard<std::mutex> g(order_mu);
      delivered = wake_order.size() > static_cast<std::size_t>(signals);
    }
  }
  b.clock_add(main_t, 1000000);
  t1.join();
  t2.join();
  b.thread_finish(main_t);
  ASSERT_EQ(wake_order.size(), 2u);
  EXPECT_EQ(wake_order[0], w1);  // FIFO in mutex-acquisition order
  EXPECT_EQ(wake_order[1], w2);
}

TEST(DetCondVar, BroadcastWakesAllWaiters) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  std::vector<ThreadId> workers;
  std::vector<std::thread> threads;
  std::atomic<int> woke{0};
  for (int i = 0; i < 3; ++i) workers.push_back(b.register_spawn(main_t));
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, self = workers[static_cast<std::size_t>(i)], i] {
      b.clock_add(self, 10 + static_cast<std::uint64_t>(i));
      b.lock(self, 0);
      b.cond_wait(self, 0, 0);
      woke.fetch_add(1);
      b.unlock(self, 0);
      b.thread_finish(self);
    });
  }
  b.clock_add(main_t, 100000);
  while (woke.load() < 3) {
    b.clock_add(main_t, 100);  // see WakeupOrderIsQueueOrder's comment
    b.lock(main_t, 0);
    b.cond_broadcast(main_t, 0);
    b.unlock(main_t, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  b.clock_add(main_t, 1000000);
  for (auto& t : threads) t.join();
  b.thread_finish(main_t);
  EXPECT_EQ(woke.load(), 3);
}

TEST(DetCondVar, MixedMutexUseRejected) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId child = b.register_spawn(main_t);
  b.clock_add(main_t, 1000);
  std::thread waiter([&] {
    b.clock_add(child, 10);
    b.lock(child, 0);
    b.cond_wait(child, 3, 0);  // condvar 3 now guarded by mutex 0
    b.unlock(child, 0);
    b.thread_finish(child);
  });
  // Wait for the child's wait to register the guard (see previous test).
  bool guard_known = false;
  for (int i = 0; i < 2000 && !guard_known; ++i) {
    try {
      b.cond_signal(main_t, 3);
    } catch (const Error&) {
      guard_known = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(guard_known);
  b.lock(main_t, 1);
  EXPECT_THROW(b.cond_wait(main_t, 3, 1), Error);  // different mutex
  b.unlock(main_t, 1);
  // Release the first waiter so the test can end.
  b.lock(main_t, 0);
  b.cond_signal(main_t, 3);
  b.unlock(main_t, 0);
  b.clock_add(main_t, 1000000);
  waiter.join();
  b.thread_finish(main_t);
}

// The determinism property: a producer/consumer handoff driven by condvars
// produces the same handoff sequence regardless of injected delays.
std::uint64_t run_pingpong(std::uint64_t perturb_seed) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId child = b.register_spawn(main_t);
  // Shared slot protected by mutex 0 + condvar 0; `state` 0=empty, 1=full.
  int state = 0;
  std::uint64_t handoff_hash = 0xcbf29ce484222325ULL;

  std::thread producer([&] {
    std::mt19937_64 rng(perturb_seed);
    for (int i = 0; i < 25; ++i) {
      if (perturb_seed != 0 && rng() % 3 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(rng() % 150));
      }
      b.clock_add(child, 15 + static_cast<std::uint64_t>(i % 7));
      b.lock(child, 0);
      while (state != 0) b.cond_wait(child, 0, 0);
      state = 1;
      b.cond_signal(child, 0);
      b.unlock(child, 0);
    }
    b.thread_finish(child);
  });

  std::mt19937_64 rng(perturb_seed + 1);
  for (int i = 0; i < 25; ++i) {
    if (perturb_seed != 0 && rng() % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(rng() % 150));
    }
    b.clock_add(main_t, 22 + static_cast<std::uint64_t>(i % 5));
    b.lock(main_t, 0);
    while (state != 1) b.cond_wait(main_t, 0, 0);
    state = 0;
    // Fold the consumer's clock at each handoff into a hash: any schedule
    // difference shows up here.
    handoff_hash = (handoff_hash ^ b.clock_of(main_t)) * 0x100000001b3ULL;
    b.cond_signal(main_t, 0);
    b.unlock(main_t, 0);
  }
  b.join(main_t, child);
  producer.join();
  b.thread_finish(main_t);
  return handoff_hash ^ b.trace().fingerprint();
}

TEST(DetCondVar, PingPongHandoffIsDeterministicUnderPerturbation) {
  const std::uint64_t reference = run_pingpong(0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_EQ(run_pingpong(seed), reference) << "seed " << seed;
  }
}

}  // namespace
}  // namespace detlock::runtime
