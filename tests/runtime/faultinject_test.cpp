// Unit tests for the deterministic fault injector: the perturbation stream
// must be a pure function of (plan seed, thread id, op index), deaths must
// fire exactly once at the configured boundary, and a disabled plan must
// inject nothing.
#include <gtest/gtest.h>

#include <cstdint>

#include "runtime/faultinject.hpp"
#include "support/error.hpp"

namespace detlock::runtime {
namespace {

// Drives one injector through a fixed, scheduler-independent boundary
// sequence for `threads` threads and returns the merged tallies.
FaultStats drive(const FaultPlan& plan, std::uint32_t threads, int ops_per_thread) {
  FaultInjector injector(plan, threads);
  for (int op = 0; op < ops_per_thread; ++op) {
    for (ThreadId t = 0; t < threads; ++t) {
      injector.on_sync(t, static_cast<SyncPoint>(op % static_cast<int>(kNumSyncPoints)));
    }
  }
  return injector.stats();
}

TEST(FaultInjector, DefaultPlanInjectsNothing) {
  FaultPlan plan;
  EXPECT_FALSE(plan.injects_timing());
  EXPECT_FALSE(plan.injects_death());
  const FaultStats stats = drive(plan, 4, 64);
  EXPECT_EQ(stats.sync_ops, 4u * 64u);
  EXPECT_EQ(stats.perturbed, 0u);
  EXPECT_EQ(stats.deaths, 0u);
  EXPECT_EQ(stats.dropped_signals, 0u);
}

TEST(FaultInjector, TimingChaosIsTimingOnly) {
  const FaultPlan plan = FaultPlan::timing_chaos(7);
  EXPECT_TRUE(plan.injects_timing());
  EXPECT_FALSE(plan.injects_death());
  EXPECT_EQ(plan.drop_signal_index, FaultPlan::kNever);
}

TEST(FaultInjector, SameSeedSameDecisions) {
  // Reproducibility across injector instances: identical plans driven
  // through identical boundary sequences tally identically.
  FaultPlan plan = FaultPlan::timing_chaos(42);
  plan.max_sleep_us = 2;  // keep the test fast; sleeps still get counted
  const FaultStats a = drive(plan, 3, 400);
  const FaultStats b = drive(plan, 3, 400);
  EXPECT_GT(a.perturbed, 0u) << "4% of 1200 boundaries should perturb some";
  EXPECT_EQ(a.perturbed, b.perturbed);
  EXPECT_EQ(a.yield_bursts, b.yield_bursts);
  EXPECT_EQ(a.spin_bursts, b.spin_bursts);
  EXPECT_EQ(a.sleeps, b.sleeps);
  EXPECT_EQ(a.slept_us, b.slept_us);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan a = FaultPlan::timing_chaos(1);
  FaultPlan b = FaultPlan::timing_chaos(2);
  a.max_sleep_us = b.max_sleep_us = 2;
  const FaultStats sa = drive(a, 3, 400);
  const FaultStats sb = drive(b, 3, 400);
  EXPECT_TRUE(sa.perturbed != sb.perturbed || sa.yield_bursts != sb.yield_bursts ||
              sa.spin_bursts != sb.spin_bursts || sa.sleeps != sb.sleeps);
}

TEST(FaultInjector, DeathFiresOnceAtConfiguredBoundary) {
  FaultPlan plan;
  plan.die_thread = 1;
  plan.die_after_ops = 2;
  plan.die_point = static_cast<int>(SyncPoint::kLockAcquired);
  FaultInjector injector(plan, 4);

  // Other threads never die, whatever they do.
  for (int i = 0; i < 8; ++i) EXPECT_NO_THROW(injector.on_sync(0, SyncPoint::kLockAcquired));

  // Thread 1: ops 1 and 2 are within the grace period; op 3 is past it but
  // at the wrong boundary; op 4 matches and dies.
  EXPECT_NO_THROW(injector.on_sync(1, SyncPoint::kLockAcquired));
  EXPECT_NO_THROW(injector.on_sync(1, SyncPoint::kLockAcquired));
  EXPECT_NO_THROW(injector.on_sync(1, SyncPoint::kUnlock));
  EXPECT_THROW(injector.on_sync(1, SyncPoint::kLockAcquired), Error);

  // One death per thread: the unwind path may hit further boundaries.
  EXPECT_NO_THROW(injector.on_sync(1, SyncPoint::kLockAcquired));
  EXPECT_EQ(injector.stats().deaths, 1u);
}

TEST(FaultInjector, DeathMessageNamesThreadAndBoundary) {
  FaultPlan plan;
  plan.die_thread = 2;
  plan.die_after_ops = 0;
  plan.die_point = static_cast<int>(SyncPoint::kBarrierArrive);
  FaultInjector injector(plan, 4);
  try {
    injector.on_sync(2, SyncPoint::kBarrierArrive);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fault injected"), std::string::npos) << what;
    EXPECT_NE(what.find("thread 2"), std::string::npos) << what;
    EXPECT_NE(what.find("barrier-arrive"), std::string::npos) << what;
  }
}

TEST(FaultInjector, AnyPointDeathFiresAtFirstBoundaryPastThreshold) {
  FaultPlan plan;
  plan.die_thread = 0;
  plan.die_after_ops = 3;
  FaultInjector injector(plan, 1);
  for (int i = 0; i < 3; ++i) EXPECT_NO_THROW(injector.on_sync(0, SyncPoint::kCondWait));
  EXPECT_THROW(injector.on_sync(0, SyncPoint::kClockPublish), Error);
}

TEST(FaultInjector, DropSignalSwallowsExactlyTheConfiguredIndex) {
  FaultPlan plan;
  plan.drop_signal_index = 2;
  FaultInjector injector(plan, 2);
  EXPECT_FALSE(injector.drop_signal(0));
  EXPECT_FALSE(injector.drop_signal(1));
  EXPECT_TRUE(injector.drop_signal(0));
  EXPECT_FALSE(injector.drop_signal(0));
  EXPECT_EQ(injector.stats().dropped_signals, 1u);
}

TEST(FaultInjector, DropSignalDisabledByDefault) {
  FaultInjector injector(FaultPlan{}, 1);
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(injector.drop_signal(0));
  EXPECT_EQ(injector.stats().dropped_signals, 0u);
}

}  // namespace
}  // namespace detlock::runtime
