// NativeRuntime: the pthread-replacement surface (paper Sec. III-B) used by
// native C++ code (the examples).
#include "runtime/native_api.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace detlock::runtime {
namespace {

TEST(NativeApi, AttachTickLock) {
  NativeRuntime rt;
  rt.attach_main();
  rt.tick(100);
  rt.mutex_lock(0);
  rt.mutex_unlock(0);
  rt.detach_main();
  EXPECT_EQ(rt.backend().stats().lock_acquires, 1u);
}

TEST(NativeApi, UnattachedThreadThrows) {
  NativeRuntime rt;
  // No attach_main(): self() must refuse.
  EXPECT_THROW(rt.tick(1), Error);
}

struct BankRun {
  std::uint64_t trace = 0;
  std::vector<std::int64_t> balances;
};

// Deterministic bank: T tellers move money between accounts under per-
// account locks; the full transfer order (and thus every balance) must be
// identical across runs.
BankRun run_bank(std::uint32_t tellers, std::uint32_t transfers) {
  NativeRuntime rt;
  rt.attach_main();
  constexpr std::uint32_t kAccounts = 8;
  std::vector<std::int64_t> balances(kAccounts, 1000);

  std::vector<std::thread> threads;
  std::vector<ThreadId> ids;
  for (std::uint32_t t = 0; t < tellers; ++t) {
    ids.push_back(rt.peek_next_id());
    threads.push_back(rt.thread_create([&rt, &balances, t, transfers] {
      std::uint64_t state = t + 1;
      for (std::uint32_t i = 0; i < transfers; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint32_t from = static_cast<std::uint32_t>(state >> 33) % kAccounts;
        const std::uint32_t to = (from + 1 + (t % (kAccounts - 1))) % kAccounts;
        rt.tick(120 + 7 * t);  // what the compiler pass would insert
        // Ordered two-lock acquire (deadlock avoidance).
        const MutexId first = std::min(from, to);
        const MutexId second = std::max(from, to);
        rt.mutex_lock(first);
        rt.mutex_lock(second);
        balances[from] -= 5;
        balances[to] += 5;
        rt.mutex_unlock(second);
        rt.mutex_unlock(first);
      }
    }));
  }
  for (std::uint32_t t = 0; t < tellers; ++t) rt.thread_join(threads[t], ids[t]);
  BankRun result;
  result.trace = rt.trace_fingerprint();
  result.balances = balances;
  rt.detach_main();
  return result;
}

TEST(NativeApi, BankTransfersAreDeterministic) {
  const BankRun a = run_bank(4, 60);
  const BankRun b = run_bank(4, 60);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.balances, b.balances);
  // Money conserved.
  EXPECT_EQ(std::accumulate(a.balances.begin(), a.balances.end(), std::int64_t{0}), 8 * 1000);
}

TEST(NativeApi, BarrierAcrossNativeThreads) {
  NativeRuntime rt;
  rt.attach_main();
  std::vector<std::thread> threads;
  std::vector<ThreadId> ids;
  std::atomic<std::uint32_t> phase1_count{0};
  std::atomic<bool> phase_violation{false};
  for (int t = 0; t < 3; ++t) {
    ids.push_back(rt.peek_next_id());
    threads.push_back(rt.thread_create([&rt, &phase1_count, &phase_violation, t] {
      rt.tick(50 + 10 * t);
      phase1_count.fetch_add(1);
      rt.barrier_wait(0, 4);
      // After the barrier every thread must observe all phase-1 arrivals.
      if (phase1_count.load() != 4) phase_violation.store(true);
      rt.tick(10);
    }));
  }
  rt.tick(5);
  phase1_count.fetch_add(1);
  rt.barrier_wait(0, 4);
  if (phase1_count.load() != 4) phase_violation.store(true);
  for (int t = 0; t < 3; ++t) rt.thread_join(threads[t], ids[t]);
  rt.detach_main();
  EXPECT_FALSE(phase_violation.load());
}

TEST(NativeApi, PeekNextIdMatchesAssignment) {
  NativeRuntime rt;
  rt.attach_main();
  const ThreadId predicted = rt.peek_next_id();
  std::atomic<ThreadId> actual{0};
  std::thread t = rt.thread_create([&rt, &actual] { actual.store(rt.self()); });
  rt.thread_join(t, predicted);
  EXPECT_EQ(actual.load(), predicted);
  rt.detach_main();
}

}  // namespace
}  // namespace detlock::runtime
