// Schedule serialization + online replica validation.
#include "runtime/schedule.hpp"

#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "runtime/det_backend.hpp"

namespace detlock::runtime {
namespace {

TEST(Schedule, SerializeParseRoundTrip) {
  std::vector<TraceEvent> events = {{0, 3, 100}, {1, 3, 250}, {0, 7, 260}};
  const std::string text = serialize_schedule(events);
  const std::vector<TraceEvent> parsed = parse_schedule(text);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[1].thread, 1u);
  EXPECT_EQ(parsed[1].mutex, 3u);
  EXPECT_EQ(parsed[1].clock, 250u);
}

TEST(Schedule, ParseSkipsCommentsAndBlanks) {
  const auto events = parse_schedule("# header\n\n0 1 2\n  # indented comment\n3 4 5  # trailing\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].thread, 3u);
}

TEST(Schedule, ParseHandlesCrlfLineEndings) {
  // Schedule files that round-tripped through a Windows editor or a git
  // checkout with autocrlf arrive with \r\n terminators; the \r must not
  // become part of the last field or turn a blank line non-blank.
  const auto events = parse_schedule("# header\r\n\r\n0 1 2\r\n3 4 5\r\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].thread, 0u);
  EXPECT_EQ(events[0].mutex, 1u);
  EXPECT_EQ(events[0].clock, 2u);
  EXPECT_EQ(events[1].thread, 3u);
  EXPECT_EQ(events[1].mutex, 4u);
  EXPECT_EQ(events[1].clock, 5u);
}

TEST(Schedule, RoundTripSurvivesCommentsBlanksAndCrlf) {
  const std::vector<TraceEvent> events = {{0, 3, 100}, {1, 3, 250}, {0, 7, 260}};
  // Decorate the serialized form the way a human-edited file might look.
  std::string text = "# edited by hand\r\n\r\n" + serialize_schedule(events) + "\n# trailing note\r\n";
  // Convert the serializer's \n endings to \r\n wholesale.
  std::string crlf;
  for (char c : text) {
    if (c == '\n' && (crlf.empty() || crlf.back() != '\r')) crlf += '\r';
    crlf += c;
  }
  const std::vector<TraceEvent> parsed = parse_schedule(crlf);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].thread, events[i].thread);
    EXPECT_EQ(parsed[i].mutex, events[i].mutex);
    EXPECT_EQ(parsed[i].clock, events[i].clock);
  }
  // And the parse -> serialize -> parse fixpoint holds.
  const std::vector<TraceEvent> again = parse_schedule(serialize_schedule(parsed));
  ASSERT_EQ(again.size(), parsed.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(again[i].clock, parsed[i].clock);
  }
}

TEST(Schedule, ParseRejectsMalformedLines) {
  EXPECT_THROW(parse_schedule("0 1\n"), Error);
  EXPECT_THROW(parse_schedule("a b c\n"), Error);
  EXPECT_THROW(parse_schedule("-1 0 0\n"), Error);
}

TEST(ScheduleValidator, AcceptsMatchingSequence) {
  ScheduleValidator v({{0, 1, 10}, {1, 1, 20}});
  v.on_acquire(0, 1, 10);
  v.on_acquire(1, 1, 20);
  EXPECT_TRUE(v.complete());
  EXPECT_EQ(v.position(), 2u);
}

TEST(ScheduleValidator, RejectsWrongThread) {
  ScheduleValidator v({{0, 1, 10}});
  EXPECT_THROW(v.on_acquire(1, 1, 10), Error);
}

TEST(ScheduleValidator, RejectsWrongClock) {
  ScheduleValidator v({{0, 1, 10}});
  EXPECT_THROW(v.on_acquire(0, 1, 11), Error);
}

TEST(ScheduleValidator, RejectsOverrun) {
  ScheduleValidator v({{0, 1, 10}});
  v.on_acquire(0, 1, 10);
  EXPECT_THROW(v.on_acquire(0, 1, 12), Error);
}

TEST(ScheduleValidator, IncompleteWhenUnderrun) {
  ScheduleValidator v({{0, 1, 10}, {1, 1, 20}});
  v.on_acquire(0, 1, 10);
  EXPECT_FALSE(v.complete());
}

// End-to-end through the backend: record one run, replay a second run under
// validation, and confirm a *perturbed* third run still matches (the whole
// point: determinism makes replica comparison exact).
TEST(ScheduleValidator, BackendReplicaRoundTrip) {
  auto run = [](ScheduleValidator* validator, bool keep_events, std::uint64_t sleep_seed) {
    RuntimeConfig config;
    config.max_threads = 4;
    config.keep_trace_events = keep_events;
    config.validator = validator;
    DetBackend b(config);
    const ThreadId main_t = b.register_main_thread();
    const ThreadId w = b.register_spawn(main_t);
    std::thread t([&] {
      std::mt19937_64 rng(sleep_seed);
      for (int i = 0; i < 20; ++i) {
        if (sleep_seed != 0 && rng() % 3 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(rng() % 100));
        }
        b.clock_add(w, 13);
        b.lock(w, 0);
        b.unlock(w, 0);
      }
      b.thread_finish(w);
    });
    for (int i = 0; i < 20; ++i) {
      b.clock_add(main_t, 29);
      b.lock(main_t, 0);
      b.unlock(main_t, 0);
    }
    b.join(main_t, w);
    t.join();
    b.thread_finish(main_t);
    return b.trace().events();
  };

  const std::vector<TraceEvent> recorded = run(nullptr, true, 0);
  ASSERT_EQ(recorded.size(), 40u);

  ScheduleValidator replay(recorded);
  run(&replay, false, 0);
  EXPECT_TRUE(replay.complete());

  ScheduleValidator perturbed(recorded);
  run(&perturbed, false, 7);
  EXPECT_TRUE(perturbed.complete());
}

}  // namespace
}  // namespace detlock::runtime
