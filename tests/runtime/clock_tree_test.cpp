// MinClockTree unit tests plus the flat-vs-tree differential oracle.
//
// The tree replaces the flat O(threads) turn scan with one root read, and
// the repo's determinism claims now rest on the two layouts answering the
// turn predicate IDENTICALLY, poll for poll.  The oracle tests here drive a
// kFlat and a kTree ClockTable through the same randomized interleavings of
// every publication edge the runtime has -- add / flush / park / set_clock /
// force_publish / finish / late activate -- and assert the answers (and the
// published clocks they derive from) never diverge.  See
// docs/turn-protocol-scaling.md for why the packed (clock, id) order makes
// this equivalence hold.
#include "runtime/clock_tree.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/clock_table.hpp"
#include "support/prng.hpp"

namespace detlock::runtime {
namespace {

// -- packed representation ------------------------------------------------

TEST(MinClockTree, PackedOrderIsTheTurnOrder) {
  // Smaller clock wins regardless of id...
  EXPECT_LT(MinClockTree::pack(3, 500), MinClockTree::pack(4, 0));
  // ...and equal clocks break the tie by smaller id.
  EXPECT_LT(MinClockTree::pack(7, 1), MinClockTree::pack(7, 2));
  // Infinity loses to the largest representable pair.
  EXPECT_LT(MinClockTree::pack(MinClockTree::kMaxPackedClock,
                               static_cast<std::uint32_t>(MinClockTree::kIdMask)),
            MinClockTree::kPackedInfinity);
  // Round trip.
  const std::uint64_t p = MinClockTree::pack(123456789, 42);
  EXPECT_EQ(MinClockTree::packed_clock(p), 123456789u);
  EXPECT_EQ(MinClockTree::packed_id(p), 42u);
}

TEST(MinClockTree, UnpackableClockThrows) {
  EXPECT_THROW(MinClockTree::pack(MinClockTree::kMaxPackedClock + 1, 0), Error);
}

// -- propagation ----------------------------------------------------------

TEST(MinClockTree, RootTracksTheMinimum) {
  MinClockTree tree(16);
  EXPECT_EQ(tree.root(), MinClockTree::kPackedInfinity);
  tree.update(3, 10);
  EXPECT_EQ(tree.root(), MinClockTree::pack(10, 3));
  tree.update(9, 5);  // new minimum from a different shard
  EXPECT_EQ(tree.root(), MinClockTree::pack(5, 9));
  tree.update(1, 5);  // tie: smaller id must win
  EXPECT_EQ(tree.root(), MinClockTree::pack(5, 1));
}

TEST(MinClockTree, RaisingTheMinimumRepropagates) {
  MinClockTree tree(16);
  tree.update(2, 1);
  tree.update(11, 4);
  EXPECT_EQ(tree.root(), MinClockTree::pack(1, 2));
  tree.update(2, 9);  // the front-runner moves on; the quote must not linger
  EXPECT_EQ(tree.root(), MinClockTree::pack(4, 11));
  tree.update(11, kClockInfinity);  // park the new minimum
  EXPECT_EQ(tree.root(), MinClockTree::pack(9, 2));
  tree.update(2, kClockInfinity);
  EXPECT_EQ(tree.root(), MinClockTree::kPackedInfinity);
}

TEST(MinClockTree, MinIsAnswersTheTurnPredicate) {
  MinClockTree tree(8);
  tree.update(0, 7);
  tree.update(1, 7);
  tree.update(2, 3);
  EXPECT_TRUE(tree.min_is(2, 3));
  EXPECT_FALSE(tree.min_is(0, 7));
  tree.update(2, 8);
  EXPECT_TRUE(tree.min_is(0, 7));   // tie with 1, smaller id
  EXPECT_FALSE(tree.min_is(1, 7));
}

TEST(MinClockTree, CapacityOneStillBuildsARoot) {
  MinClockTree tree(1);
  EXPECT_EQ(tree.depth(), 1u);
  EXPECT_EQ(tree.root(), MinClockTree::kPackedInfinity);
  tree.update(0, 5);
  EXPECT_TRUE(tree.min_is(0, 5));
}

TEST(MinClockTree, NonMinimumUpdatesPruneEarly) {
  MinClockTree tree(64);  // two combining levels above the leaves
  EXPECT_EQ(tree.depth(), 2u);
  EXPECT_EQ(tree.update(0, 1), 2u);    // first publication refreshes the path
  EXPECT_EQ(tree.update(63, 100), 1u); // own shard quotes it, pruned at the root
  EXPECT_EQ(tree.update(62, 200), 0u); // sibling 63 holds the shard min: leaf store only
  EXPECT_EQ(tree.update(0, 2), 2u);    // root quotes us: full re-propagation
}

TEST(MinClockTree, RepairRebuildsAStalePath) {
  MinClockTree tree(8);
  tree.update(4, 6);
  tree.repair(4);  // idempotent on a settled path
  EXPECT_EQ(tree.root(), MinClockTree::pack(6, 4));
  EXPECT_TRUE(tree.min_is(4, 6));
}

// Randomized single-structure check against a straight array-min model:
// after every operation the root must be exactly the min over the model,
// and min_is must agree with the model's predicate for every live slot.
TEST(MinClockTree, RootMatchesArrayModelOnRandomizedSequences) {
  constexpr std::uint32_t kSlots = 24;  // not a power of the arity: ragged top level
  constexpr int kIterations = 4000;
  Xoshiro256 rng(0x7EE0C10Cu);
  MinClockTree tree(kSlots);
  std::vector<std::uint64_t> model(kSlots, kClockInfinity);

  for (int iter = 0; iter < kIterations; ++iter) {
    const std::uint32_t id = static_cast<std::uint32_t>(rng.next_below(kSlots));
    switch (rng.next_below(8)) {
      case 0:  // park
        model[id] = kClockInfinity;
        tree.update(id, kClockInfinity);
        break;
      default: {  // publish; small deltas keep ties frequent
        const std::uint64_t base = model[id] == kClockInfinity ? rng.next_below(4) : model[id];
        model[id] = base + rng.next_below(3);
        tree.update(id, model[id]);
        break;
      }
    }
    std::uint64_t expect = MinClockTree::kPackedInfinity;
    for (std::uint32_t u = 0; u < kSlots; ++u) {
      if (model[u] == kClockInfinity) continue;
      const std::uint64_t packed = MinClockTree::pack(model[u], u);
      if (packed < expect) expect = packed;
    }
    ASSERT_EQ(tree.root(), expect) << "iteration " << iter;
    for (std::uint32_t u = 0; u < kSlots; ++u) {
      if (model[u] == kClockInfinity) continue;
      ASSERT_EQ(tree.min_is(u, model[u]), MinClockTree::pack(model[u], u) == expect)
          << "iteration " << iter << ", slot " << u;
    }
  }
}

// Concurrent hammering must settle to the true minimum: each host thread
// owns a disjoint band of slots and publishes monotonically rising clocks
// (with parks and unparks) while polling min_is.  After the join, the root
// must equal the min over the final leaf values -- any stale quote left
// behind would mean the prune raced a refresh, which is exactly what the
// triple-check in update() exists to prevent.
TEST(MinClockTree, ConcurrentUpdatesSettleToTheTrueMinimum) {
  constexpr std::uint32_t kHostThreads = 4;
  constexpr std::uint32_t kSlotsPerThread = 4;
  constexpr std::uint32_t kSlots = kHostThreads * kSlotsPerThread;
  constexpr int kOpsPerThread = 3000;
  MinClockTree tree(kSlots);

  std::vector<std::uint64_t> final_clock(kSlots, kClockInfinity);
  std::vector<std::thread> hosts;
  for (std::uint32_t h = 0; h < kHostThreads; ++h) {
    hosts.emplace_back([h, &tree, &final_clock] {
      Xoshiro256 rng(0xC0C0A000u + h);
      const std::uint32_t base = h * kSlotsPerThread;
      std::vector<std::uint64_t> clock(kSlotsPerThread, 0);
      std::vector<bool> parked(kSlotsPerThread, true);
      for (int iter = 0; iter < kOpsPerThread; ++iter) {
        const std::uint32_t i = static_cast<std::uint32_t>(rng.next_below(kSlotsPerThread));
        const std::uint32_t id = base + i;
        switch (rng.next_below(8)) {
          case 0:
            if (!parked[i]) {
              tree.update(id, kClockInfinity);
              parked[i] = true;
            }
            break;
          case 1:
            if (parked[i]) {
              tree.update(id, clock[i]);
              parked[i] = false;
            }
            break;
          case 2:
            if (!parked[i]) tree.min_is(id, clock[i]);  // result is timing-dependent
            break;
          default:
            if (!parked[i]) {
              clock[i] += 1 + rng.next_below(3);
              tree.update(id, clock[i]);
            }
            break;
        }
      }
      for (std::uint32_t i = 0; i < kSlotsPerThread; ++i) {
        final_clock[base + i] = parked[i] ? kClockInfinity : clock[i];
      }
    });
  }
  for (std::thread& h : hosts) h.join();

  std::uint64_t expect = MinClockTree::kPackedInfinity;
  for (std::uint32_t u = 0; u < kSlots; ++u) {
    if (final_clock[u] == kClockInfinity) continue;
    const std::uint64_t packed = MinClockTree::pack(final_clock[u], u);
    if (packed < expect) expect = packed;
  }
  EXPECT_EQ(tree.root(), expect);
  if (expect != MinClockTree::kPackedInfinity) {
    const std::uint32_t winner = MinClockTree::packed_id(expect);
    EXPECT_TRUE(tree.min_is(winner, final_clock[winner]));
  }
}

// -- flat-vs-tree differential oracle -------------------------------------

ClockTable make_table(ClockTableKind kind, ClockPublication publication,
                      std::uint32_t max_threads, std::uint64_t chunk_size = 64) {
  RuntimeConfig c;
  c.max_threads = max_threads;
  c.publication = publication;
  c.chunk_size = chunk_size;
  c.clock_table = kind;
  return ClockTable(c);
}

// Drives a kFlat and a kTree table through one randomized interleaving of
// every publication edge and asserts poll-for-poll agreement.  Late
// activation keeps the registered high-water mark moving; the
// force_publish-then-set_clock pair is the barrier-release edge (the
// owner's set_clock must hit the publish() early-return, already-visible
// path); finished threads are still polled so the tree's parked-poller
// fallback scan is exercised too.
void run_differential(ClockPublication publication, std::uint64_t seed) {
  constexpr std::uint32_t kThreads = 24;  // ragged tree shard at the top
  constexpr int kIterations = 4000;
  Xoshiro256 rng(seed);
  ClockTable flat = make_table(ClockTableKind::kFlat, publication, kThreads);
  ClockTable tree = make_table(ClockTableKind::kTree, publication, kThreads);
  ASSERT_EQ(flat.kind(), ClockTableKind::kFlat);
  ASSERT_EQ(tree.kind(), ClockTableKind::kTree);

  std::vector<bool> active(kThreads, false);
  std::vector<bool> parked(kThreads, false);
  std::vector<bool> finished(kThreads, false);
  std::vector<std::uint64_t> saved_clock(kThreads, 0);
  std::uint32_t activated = 0;

  const auto activate_next = [&](std::uint64_t initial) {
    if (activated >= kThreads) return;
    flat.activate(activated, initial);
    tree.activate(activated, initial);
    active[activated] = true;
    ++activated;
  };
  activate_next(1);
  activate_next(1);  // immediate tie

  for (int iter = 0; iter < kIterations; ++iter) {
    const ThreadId id = static_cast<ThreadId>(rng.next_below(kThreads));
    const bool live = id < activated && active[id] && !finished[id];
    switch (rng.next_below(12)) {
      case 0:  // park (barrier entry / pre-exit)
        if (live && !parked[id]) {
          saved_clock[id] = flat.local(id);
          flat.park(id);
          tree.park(id);
          parked[id] = true;
        }
        break;
      case 1:  // plain unpark (join return)
        if (live && parked[id]) {
          const std::uint64_t resume = saved_clock[id] + rng.next_below(3);
          flat.set_clock(id, resume);
          tree.set_clock(id, resume);
          parked[id] = false;
        }
        break;
      case 2:  // barrier release: releaser force-publishes, owner re-sets
        if (live && parked[id]) {
          const std::uint64_t resume = saved_clock[id] + 1 + rng.next_below(3);
          flat.force_publish(id, resume);
          tree.force_publish(id, resume);
          flat.set_clock(id, resume);  // publish() early-return path
          tree.set_clock(id, resume);
          parked[id] = false;
        }
        break;
      case 3:  // finish
        if (live && !parked[id]) {
          flat.finish(id);
          tree.finish(id);
          finished[id] = true;
        }
        break;
      case 4:  // late spawn: high-water mark advances mid-run
        activate_next(rng.next_below(8));
        break;
      case 5:  // sync-op entry flush (chunked-mode publication edge)
        if (live && !parked[id]) {
          flat.flush(id);
          tree.flush(id);
        }
        break;
      default:  // ordinary clock advance; small deltas keep ties frequent
        if (live && !parked[id]) {
          const std::uint64_t delta = rng.next_below(3);
          ASSERT_EQ(flat.add(id, delta), tree.add(id, delta));
        }
        break;
    }

    ASSERT_EQ(flat.registered_count(), tree.registered_count()) << "iteration " << iter;
    ASSERT_EQ(flat.live_count(), tree.live_count()) << "iteration " << iter;
    // Poll EVERY activated slot -- live, parked, and finished alike: the
    // two layouts must agree on all of them, at every step.
    for (ThreadId u = 0; u < activated; ++u) {
      ASSERT_EQ(flat.published(u), tree.published(u)) << "iteration " << iter << ", thread " << u;
      ASSERT_EQ(flat.has_turn(u), tree.has_turn(u)) << "iteration " << iter << ", thread " << u;
    }
  }
  // Same calls -> same poll counts; scan counts differ by design (that gap
  // is bench/threads_sweep's sublinearity signal).
  EXPECT_EQ(flat.turn_poll_count(), tree.turn_poll_count());
}

TEST(ClockTableDifferential, TreeMatchesFlatEveryUpdate) {
  run_differential(ClockPublication::kEveryUpdate, 0xD1FF0001u);
}

TEST(ClockTableDifferential, TreeMatchesFlatChunked) {
  run_differential(ClockPublication::kChunked, 0xD1FF0002u);
}

// -- registered-slot high-water mark --------------------------------------

TEST(ClockTable, RegisteredCountIsAHighWaterMark) {
  RuntimeConfig c;
  c.max_threads = 64;
  c.clock_table = ClockTableKind::kFlat;
  ClockTable t(c);
  EXPECT_EQ(t.registered_count(), 0u);
  t.activate(0, 0);
  t.activate(1, 0);
  t.activate(2, 0);
  EXPECT_EQ(t.registered_count(), 3u);
  t.activate(7, 0);  // sparse activation still raises the mark past the gap
  EXPECT_EQ(t.registered_count(), 8u);
  t.finish(1);  // finishing never lowers it: final clocks stay readable
  EXPECT_EQ(t.registered_count(), 8u);
}

TEST(ClockTable, FlatScansCoverOnlyRegisteredSlots) {
  RuntimeConfig c;
  c.max_threads = 64;
  c.clock_table = ClockTableKind::kFlat;
  ClockTable t(c);
  t.activate(0, 10);
  t.activate(1, 11);
  t.activate(2, 12);
  t.activate(3, 13);
  EXPECT_TRUE(t.has_turn(0));
  // The winner's full scan examined the three other registered slots --
  // not the 63 the capacity would allow.
  EXPECT_EQ(t.turn_poll_count(), 1u);
  EXPECT_EQ(t.turn_scan_slot_count(), 3u);
}

TEST(ClockTable, TreePollsExamineOneSlotEquivalent) {
  RuntimeConfig c;
  c.max_threads = 64;
  c.clock_table = ClockTableKind::kTree;
  ClockTable t(c);
  for (ThreadId id = 0; id < 16; ++id) t.activate(id, 5 + id);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(t.has_turn(0));
    EXPECT_FALSE(t.has_turn(9));
  }
  EXPECT_EQ(t.turn_poll_count(), 20u);
  EXPECT_EQ(t.turn_scan_slot_count(), 20u);  // one root read per poll
}

}  // namespace
}  // namespace detlock::runtime
