#include "runtime/clock_table.hpp"

#include <gtest/gtest.h>

namespace detlock::runtime {
namespace {

RuntimeConfig config_every_update() {
  RuntimeConfig c;
  c.max_threads = 4;
  return c;
}

TEST(ClockTable, ActivateSetsInitialClock) {
  ClockTable t(config_every_update());
  t.activate(0, 7);
  EXPECT_EQ(t.published(0), 7u);
  EXPECT_EQ(t.local(0), 7u);
  EXPECT_EQ(t.state(0), ThreadState::kLive);
  EXPECT_EQ(t.state(1), ThreadState::kUnused);
}

TEST(ClockTable, ReusingSlotThrows) {
  ClockTable t(config_every_update());
  t.activate(0, 0);
  EXPECT_THROW(t.activate(0, 0), Error);
}

TEST(ClockTable, EveryUpdatePublishesImmediately) {
  ClockTable t(config_every_update());
  t.activate(0, 0);
  EXPECT_TRUE(t.add(0, 5));
  EXPECT_EQ(t.published(0), 5u);
  EXPECT_TRUE(t.add(0, 3));
  EXPECT_EQ(t.published(0), 8u);
}

TEST(ClockTable, ChunkedPublishesOnlyAtChunkBoundaries) {
  RuntimeConfig c = config_every_update();
  c.publication = ClockPublication::kChunked;
  c.chunk_size = 100;
  ClockTable t(c);
  t.activate(0, 0);
  EXPECT_FALSE(t.add(0, 40));
  EXPECT_EQ(t.published(0), 0u);   // stale: the Kendo disadvantage
  EXPECT_EQ(t.local(0), 40u);
  EXPECT_FALSE(t.add(0, 59));
  EXPECT_EQ(t.published(0), 0u);
  EXPECT_TRUE(t.add(0, 1));        // residue hits 100
  EXPECT_EQ(t.published(0), 100u);
}

TEST(ClockTable, FlushForcesPublication) {
  RuntimeConfig c = config_every_update();
  c.publication = ClockPublication::kChunked;
  c.chunk_size = 1000;
  ClockTable t(c);
  t.activate(0, 0);
  t.add(0, 5);
  EXPECT_EQ(t.published(0), 0u);
  t.flush(0);
  EXPECT_EQ(t.published(0), 5u);
}

TEST(ClockTable, ParkPublishesInfinityPreservingLocal) {
  ClockTable t(config_every_update());
  t.activate(0, 10);
  t.park(0);
  EXPECT_EQ(t.published(0), kClockInfinity);
  EXPECT_EQ(t.local(0), 10u);
  t.set_clock(0, 25);
  EXPECT_EQ(t.published(0), 25u);
}

TEST(ClockTable, FinishedThreadsKeepFinalClock) {
  ClockTable t(config_every_update());
  t.activate(0, 0);
  t.add(0, 42);
  t.finish(0);
  EXPECT_EQ(t.state(0), ThreadState::kFinished);
  EXPECT_EQ(t.published(0), kClockInfinity);
  EXPECT_EQ(t.finished_clock(0), 42u);
}

TEST(ClockTable, TurnGoesToStrictMinimum) {
  ClockTable t(config_every_update());
  t.activate(0, 10);
  t.activate(1, 5);
  EXPECT_FALSE(t.has_turn(0));
  EXPECT_TRUE(t.has_turn(1));
  t.add(1, 10);  // now 15 > 10
  EXPECT_TRUE(t.has_turn(0));
  EXPECT_FALSE(t.has_turn(1));
}

TEST(ClockTable, TiesBrokenBySmallerThreadId) {
  ClockTable t(config_every_update());
  t.activate(0, 7);
  t.activate(1, 7);
  EXPECT_TRUE(t.has_turn(0));
  EXPECT_FALSE(t.has_turn(1));
}

TEST(ClockTable, ParkedAndFinishedThreadsDoNotBlockTurn) {
  ClockTable t(config_every_update());
  t.activate(0, 100);
  t.activate(1, 5);
  t.activate(2, 1);
  EXPECT_FALSE(t.has_turn(0));
  t.park(1);
  t.finish(2);
  EXPECT_TRUE(t.has_turn(0));  // only live competitor left
}

TEST(ClockTable, LiveCountTracksStates) {
  ClockTable t(config_every_update());
  EXPECT_EQ(t.live_count(), 0u);
  t.activate(0, 0);
  t.activate(1, 0);
  EXPECT_EQ(t.live_count(), 2u);
  t.finish(1);
  EXPECT_EQ(t.live_count(), 1u);
}

TEST(ClockTable, SingleThreadAlwaysHasTurn) {
  ClockTable t(config_every_update());
  t.activate(0, 12345);
  EXPECT_TRUE(t.has_turn(0));
}

}  // namespace
}  // namespace detlock::runtime
