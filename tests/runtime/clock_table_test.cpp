#include "runtime/clock_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/prng.hpp"

namespace detlock::runtime {
namespace {

// Default config: tree-mode turn predicate (the RuntimeConfig default), so
// the generic tests below cover the production layout.  The blocker-cache
// section pins kFlat explicitly -- the cache is a flat-scan fast path the
// tree never consults.
RuntimeConfig config_every_update() {
  RuntimeConfig c;
  c.max_threads = 4;
  return c;
}

TEST(ClockTable, ActivateSetsInitialClock) {
  ClockTable t(config_every_update());
  t.activate(0, 7);
  EXPECT_EQ(t.published(0), 7u);
  EXPECT_EQ(t.local(0), 7u);
  EXPECT_EQ(t.state(0), ThreadState::kLive);
  EXPECT_EQ(t.state(1), ThreadState::kUnused);
}

TEST(ClockTable, ReusingSlotThrows) {
  ClockTable t(config_every_update());
  t.activate(0, 0);
  EXPECT_THROW(t.activate(0, 0), Error);
}

TEST(ClockTable, EveryUpdatePublishesImmediately) {
  ClockTable t(config_every_update());
  t.activate(0, 0);
  EXPECT_TRUE(t.add(0, 5));
  EXPECT_EQ(t.published(0), 5u);
  EXPECT_TRUE(t.add(0, 3));
  EXPECT_EQ(t.published(0), 8u);
}

TEST(ClockTable, ChunkedPublishesOnlyAtChunkBoundaries) {
  RuntimeConfig c = config_every_update();
  c.publication = ClockPublication::kChunked;
  c.chunk_size = 100;
  ClockTable t(c);
  t.activate(0, 0);
  EXPECT_FALSE(t.add(0, 40));
  EXPECT_EQ(t.published(0), 0u);   // stale: the Kendo disadvantage
  EXPECT_EQ(t.local(0), 40u);
  EXPECT_FALSE(t.add(0, 59));
  EXPECT_EQ(t.published(0), 0u);
  EXPECT_TRUE(t.add(0, 1));        // residue hits 100
  EXPECT_EQ(t.published(0), 100u);
}

TEST(ClockTable, FlushForcesPublication) {
  RuntimeConfig c = config_every_update();
  c.publication = ClockPublication::kChunked;
  c.chunk_size = 1000;
  ClockTable t(c);
  t.activate(0, 0);
  t.add(0, 5);
  EXPECT_EQ(t.published(0), 0u);
  t.flush(0);
  EXPECT_EQ(t.published(0), 5u);
}

TEST(ClockTable, ParkPublishesInfinityPreservingLocal) {
  ClockTable t(config_every_update());
  t.activate(0, 10);
  t.park(0);
  EXPECT_EQ(t.published(0), kClockInfinity);
  EXPECT_EQ(t.local(0), 10u);
  t.set_clock(0, 25);
  EXPECT_EQ(t.published(0), 25u);
}

TEST(ClockTable, FinishedThreadsKeepFinalClock) {
  ClockTable t(config_every_update());
  t.activate(0, 0);
  t.add(0, 42);
  t.finish(0);
  EXPECT_EQ(t.state(0), ThreadState::kFinished);
  EXPECT_EQ(t.published(0), kClockInfinity);
  EXPECT_EQ(t.finished_clock(0), 42u);
}

TEST(ClockTable, TurnGoesToStrictMinimum) {
  ClockTable t(config_every_update());
  t.activate(0, 10);
  t.activate(1, 5);
  EXPECT_FALSE(t.has_turn(0));
  EXPECT_TRUE(t.has_turn(1));
  t.add(1, 10);  // now 15 > 10
  EXPECT_TRUE(t.has_turn(0));
  EXPECT_FALSE(t.has_turn(1));
}

TEST(ClockTable, TiesBrokenBySmallerThreadId) {
  ClockTable t(config_every_update());
  t.activate(0, 7);
  t.activate(1, 7);
  EXPECT_TRUE(t.has_turn(0));
  EXPECT_FALSE(t.has_turn(1));
}

TEST(ClockTable, ParkedAndFinishedThreadsDoNotBlockTurn) {
  ClockTable t(config_every_update());
  t.activate(0, 100);
  t.activate(1, 5);
  t.activate(2, 1);
  EXPECT_FALSE(t.has_turn(0));
  t.park(1);
  t.finish(2);
  EXPECT_TRUE(t.has_turn(0));  // only live competitor left
}

TEST(ClockTable, LiveCountTracksStates) {
  ClockTable t(config_every_update());
  EXPECT_EQ(t.live_count(), 0u);
  t.activate(0, 0);
  t.activate(1, 0);
  EXPECT_EQ(t.live_count(), 2u);
  t.finish(1);
  EXPECT_EQ(t.live_count(), 1u);
}

TEST(ClockTable, SingleThreadAlwaysHasTurn) {
  ClockTable t(config_every_update());
  t.activate(0, 12345);
  EXPECT_TRUE(t.has_turn(0));
}

// -- "remember the blocker" fast path (has_turn) --------------------------

/// Independent full-scan oracle over the public API: `id` holds the turn
/// iff no live thread has a strictly smaller published clock, or an equal
/// clock with a smaller id.
bool has_turn_oracle(const ClockTable& t, ThreadId id) {
  const std::uint64_t mine = t.published(id);
  for (std::uint32_t u = 0; u < t.capacity(); ++u) {
    if (u == id || t.state(u) != ThreadState::kLive) continue;
    const std::uint64_t theirs = t.published(u);
    if (theirs < mine || (theirs == mine && u < id)) return false;
  }
  return true;
}

TEST(ClockTable, BlockerCacheRetargetsWhenTheBlockerMovesOn) {
  RuntimeConfig c;
  c.max_threads = 3;
  c.clock_table = ClockTableKind::kFlat;
  ClockTable t(c);
  t.activate(0, 0);
  t.activate(1, 5);
  t.activate(2, 10);
  EXPECT_FALSE(t.has_turn(2));  // blocked by thread 0 (cached)
  EXPECT_FALSE(t.has_turn(2));  // served from the cache
  t.set_clock(0, 20);           // cached blocker no longer denies...
  EXPECT_FALSE(t.has_turn(2));  // ...full scan retargets to thread 1
  t.set_clock(1, 30);
  EXPECT_TRUE(t.has_turn(2));   // strict minimum now
  t.set_clock(2, 40);
  EXPECT_FALSE(t.has_turn(2));  // thread 0 (clock 20) denies again
}

TEST(ClockTable, BlockerCacheTieBreakByIdMatchesOracle) {
  RuntimeConfig c;
  c.max_threads = 4;
  c.clock_table = ClockTableKind::kFlat;
  ClockTable t(c);
  for (ThreadId id = 0; id < 4; ++id) t.activate(id, 7);  // four-way tie
  for (ThreadId id = 0; id < 4; ++id) {
    EXPECT_EQ(t.has_turn(id), has_turn_oracle(t, id)) << "thread " << id;
    EXPECT_EQ(t.has_turn(id), id == 0) << "smallest id must win the tie";
  }
}

TEST(ClockTable, BlockerCacheMatchesOracleOnRandomizedClockSequences) {
  constexpr std::uint32_t kThreads = 8;
  constexpr int kIterations = 4000;
  Xoshiro256 rng(0xDE710CC5u);
  RuntimeConfig c;
  c.max_threads = kThreads;
  c.clock_table = ClockTableKind::kFlat;
  ClockTable t(c);
  for (ThreadId id = 0; id < kThreads; ++id) t.activate(id, rng.next_below(4));

  std::vector<bool> parked(kThreads, false);
  std::vector<std::uint64_t> saved_clock(kThreads, 0);
  for (int iter = 0; iter < kIterations; ++iter) {
    const ThreadId id = static_cast<ThreadId>(rng.next_below(kThreads));
    switch (rng.next_below(8)) {
      case 0:  // park, remembering the clock the owner would keep locally
        if (!parked[id]) {
          saved_clock[id] = t.local(id);
          t.park(id);
          parked[id] = true;
        }
        break;
      case 1:  // unpark (barrier release path)
        if (parked[id]) {
          t.set_clock(id, saved_clock[id] + rng.next_below(3));
          parked[id] = false;
        }
        break;
      default:  // ordinary clock advance; small deltas keep ties frequent
        if (!parked[id]) t.add(id, rng.next_below(3));
        break;
    }
    // Every thread's fast-path answer must equal the full-scan oracle at
    // every step, no matter how stale its cached blocker is.
    for (ThreadId u = 0; u < kThreads; ++u) {
      if (parked[u]) continue;
      ASSERT_EQ(t.has_turn(u), has_turn_oracle(t, u))
          << "iteration " << iter << ", thread " << u;
    }
  }
}

}  // namespace
}  // namespace detlock::runtime
