// DetBackend mutex semantics: the Kendo algorithm of paper Fig. 2.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/det_backend.hpp"

namespace detlock::runtime {
namespace {

RuntimeConfig small_config() {
  RuntimeConfig c;
  c.max_threads = 8;
  return c;
}

TEST(DetMutex, SingleThreadLockUnlock) {
  DetBackend b(small_config());
  const ThreadId t = b.register_main_thread();
  b.clock_add(t, 10);
  b.lock(t, 0);
  b.unlock(t, 0);
  EXPECT_EQ(b.stats().lock_acquires, 1u);
}

TEST(DetMutex, UnlockWithoutHoldThrows) {
  DetBackend b(small_config());
  const ThreadId t = b.register_main_thread();
  EXPECT_THROW(b.unlock(t, 0), Error);
}

TEST(DetMutex, RelockByHolderDetectsSelfDeadlock) {
  DetBackend b(small_config());
  const ThreadId t = b.register_main_thread();
  b.clock_add(t, 1);
  b.lock(t, 3);
  EXPECT_THROW(b.lock(t, 3), Error);
}

TEST(DetMutex, MutexIdOutOfRangeThrows) {
  DetBackend b(small_config());
  const ThreadId t = b.register_main_thread();
  EXPECT_THROW(b.lock(t, 1u << 20), Error);
}

// Paper Fig. 2: the thread with the smaller logical clock acquires first.
// Thread A (clock 1029) must wait until thread B (clock 329) passes it.
TEST(DetMutex, LowerClockThreadAcquiresFirst) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();  // id 0
  const ThreadId child = b.register_spawn(main_t);   // id 1, clock 1

  // Give main a large clock so the child should win the first acquire.
  b.clock_add(main_t, 1029);

  std::uint64_t child_acquire_order = 0;
  std::uint64_t main_acquire_order = 0;
  std::atomic<std::uint64_t> order_counter{1};

  std::thread child_thread([&] {
    b.clock_add(child, 328);  // clock 329 < 1029
    b.lock(child, 0);
    child_acquire_order = order_counter.fetch_add(1);
    b.clock_add(child, 2000);  // move past main so main can proceed
    b.unlock(child, 0);
    b.thread_finish(child);
  });

  b.lock(main_t, 0);
  main_acquire_order = order_counter.fetch_add(1);
  b.unlock(main_t, 0);
  child_thread.join();
  b.thread_finish(main_t);

  EXPECT_EQ(child_acquire_order, 1u);
  EXPECT_EQ(main_acquire_order, 2u);
}

// Determinism witness: repeated runs of a contended counter produce the
// same global acquisition sequence.
std::uint64_t run_contended_fingerprint(std::uint64_t work_a, std::uint64_t work_b) {
  DetBackend b(small_config());
  const ThreadId main_t = b.register_main_thread();
  const ThreadId w1 = b.register_spawn(main_t);
  const ThreadId w2 = b.register_spawn(main_t);

  auto worker = [&](ThreadId self, std::uint64_t work) {
    for (int i = 0; i < 50; ++i) {
      b.clock_add(self, work);
      b.lock(self, 0);
      b.clock_add(self, 3);
      b.unlock(self, 0);
    }
    b.thread_finish(self);
  };
  std::thread t1(worker, w1, work_a);
  std::thread t2(worker, w2, work_b);
  // Main parks logically by joining both.
  b.join(main_t, w1);
  b.join(main_t, w2);
  t1.join();
  t2.join();
  b.thread_finish(main_t);
  return b.trace().fingerprint();
}

TEST(DetMutex, ContendedAcquisitionOrderIsReproducible) {
  const std::uint64_t f1 = run_contended_fingerprint(17, 41);
  const std::uint64_t f2 = run_contended_fingerprint(17, 41);
  const std::uint64_t f3 = run_contended_fingerprint(17, 41);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f2, f3);
}

TEST(DetMutex, DifferentClockProfilesGiveDifferentOrders) {
  // Sanity: the fingerprint actually reflects ordering (different work
  // ratios change who wins).
  const std::uint64_t f1 = run_contended_fingerprint(17, 41);
  const std::uint64_t f2 = run_contended_fingerprint(41, 17);
  EXPECT_NE(f1, f2);
}

TEST(DetMutex, FailedAttemptsAdvanceClock) {
  // A waiter's clock must grow by 1 per failed attempt so it can pass the
  // release time.  Single-threaded deterministic check: acquire at clock 0
  // requires one failed attempt (release_time 0 is not < clock 0).
  DetBackend b(small_config());
  const ThreadId t = b.register_main_thread();
  b.lock(t, 0);  // clock 0: first attempt fails, bump to 1, succeed
  EXPECT_GE(b.stats().failed_trylocks, 1u);
  b.unlock(t, 0);
}

TEST(DetMutex, ReleaseTimeGatesReacquisition) {
  DetBackend b(small_config());
  const ThreadId t = b.register_main_thread();
  b.clock_add(t, 10);
  b.lock(t, 0);
  b.unlock(t, 0);  // release_time = clock at unlock
  const std::uint64_t before = b.stats().failed_trylocks;
  b.clock_add(t, 100);  // well past the release time
  b.lock(t, 0);         // should succeed without any failed attempt
  EXPECT_EQ(b.stats().failed_trylocks, before);
  b.unlock(t, 0);
}

TEST(DetMutex, AbortFlagUnblocksWaiters) {
  std::atomic<bool> abort{false};
  RuntimeConfig c = small_config();
  c.abort_flag = &abort;
  DetBackend b(c);
  const ThreadId main_t = b.register_main_thread();
  const ThreadId child = b.register_spawn(main_t);
  b.clock_add(main_t, 5);

  // Start the waiter BEFORE main locks: main's wait-for-turn needs the
  // child's clock (seeded at 1) to pass its own.
  std::thread waiter([&] {
    b.clock_add(child, 100);  // child at 101: lets main (5) take the turn
    // Child can only acquire once main's clock passes 101 -- which never
    // happens (main sleeps then aborts), so the child must unblock via the
    // abort flag.
    EXPECT_THROW(b.lock(child, 0), Error);
    b.thread_finish(child);
  });
  b.lock(main_t, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  abort.store(true);
  waiter.join();
  b.unlock(main_t, 0);
  b.thread_finish(main_t);
}

}  // namespace
}  // namespace detlock::runtime
