// Profiler unit accounting: category bookkeeping, conservation invariants,
// per-mutex counters, breakdown rendering, and the Chrome-trace export.
#include "runtime/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace detlock::runtime {
namespace {

TEST(Profiler, AttributesWaitsToCategories) {
  Profiler p(4);
  p.thread_begin(0);
  p.add_wait(0, WaitCategory::kTurnWait, 100, 250, 3);
  p.add_wait(0, WaitCategory::kTurnWait, 300, 400, 1);
  p.add_wait(0, WaitCategory::kLockRetry, 500, 900, 7);
  p.thread_end(0, /*instructions=*/1000, /*clock_instructions=*/40);

  const ProfileSummary s = p.summary();
  ASSERT_EQ(s.threads.size(), 1u);
  const ThreadProfile& t = s.threads[0];
  EXPECT_EQ(t.thread, 0u);
  EXPECT_EQ(t.instructions, 1000u);
  EXPECT_EQ(t.clock_instructions, 40u);

  const CategoryStat& turn = t.categories[static_cast<std::size_t>(WaitCategory::kTurnWait)];
  EXPECT_EQ(turn.ns, 250u);  // 150 + 100
  EXPECT_EQ(turn.events, 2u);
  EXPECT_EQ(turn.iters, 4u);
  const CategoryStat& retry = t.categories[static_cast<std::size_t>(WaitCategory::kLockRetry)];
  EXPECT_EQ(retry.ns, 400u);
  EXPECT_EQ(retry.events, 1u);
  EXPECT_EQ(retry.iters, 7u);
  EXPECT_EQ(t.wait_ns(), 650u);
}

TEST(Profiler, ConservationSumOfCategoriesWithinWall) {
  // Real-clock lifetime: whatever happens, attributed waits never exceed
  // the thread's measured wall time, and useful is the exact residual.
  Profiler p(2);
  p.thread_begin(0);
  const std::uint64_t a = p.now();
  const std::uint64_t b = p.now();
  p.add_wait(0, WaitCategory::kBarrierWait, a, b, 1);
  p.thread_end(0, 10, 1);

  const ProfileSummary s = p.summary();
  ASSERT_EQ(s.threads.size(), 1u);
  EXPECT_LE(s.threads[0].wait_ns(), s.threads[0].wall_ns);
  EXPECT_EQ(s.threads[0].useful_ns(), s.threads[0].wall_ns - s.threads[0].wait_ns());
  EXPECT_LE(s.total_wait_ns, s.total_wall_ns);
  EXPECT_EQ(s.total_useful_ns + s.total_wait_ns, s.total_wall_ns);
}

TEST(Profiler, MergesPerMutexCountersAcrossThreads) {
  Profiler p(4);
  p.thread_begin(0);
  p.thread_begin(1);
  p.on_acquire(0, /*mutex=*/5, /*wait_ns=*/100, /*contended=*/false, /*clock=*/10, /*at_ns=*/100);
  p.on_acquire(0, 5, 300, true, 20, 500);
  p.on_acquire(1, 5, 50, false, 15, 200);
  p.on_acquire(1, 9, 40, true, 30, 700);
  p.thread_end(0, 1, 0);
  p.thread_end(1, 1, 0);

  const ProfileSummary s = p.summary();
  ASSERT_EQ(s.mutexes.size(), 2u);
  // Sorted by total wait, descending: mutex 5 (450ns) before mutex 9 (40ns).
  EXPECT_EQ(s.mutexes[0].mutex, 5u);
  EXPECT_EQ(s.mutexes[0].acquires, 3u);
  EXPECT_EQ(s.mutexes[0].contended, 1u);
  EXPECT_EQ(s.mutexes[0].wait_ns, 450u);
  EXPECT_EQ(s.mutexes[0].max_wait_ns, 300u);
  EXPECT_EQ(s.mutexes[1].mutex, 9u);
  EXPECT_EQ(s.mutexes[1].contended, 1u);
  for (const MutexProfile& m : s.mutexes) {
    EXPECT_LE(m.contended, m.acquires);
    EXPECT_LE(m.max_wait_ns, m.wait_ns);
  }
}

TEST(Profiler, SpansKeptOnlyWhenRequested) {
  Profiler off(2, /*keep_spans=*/false);
  off.thread_begin(0);
  off.add_wait(0, WaitCategory::kJoinWait, 10, 20, 1);
  off.on_acquire(0, 1, 5, false, 1, 20);
  off.thread_end(0, 1, 0);
  EXPECT_TRUE(off.spans().empty());
  EXPECT_TRUE(off.acquire_marks().empty());

  Profiler on(2, /*keep_spans=*/true);
  on.thread_begin(0);
  on.add_wait(0, WaitCategory::kJoinWait, 10, 20, 1);
  on.on_acquire(0, 1, 5, false, 1, 20);
  on.thread_end(0, 1, 0);
  ASSERT_EQ(on.spans().size(), 1u);
  EXPECT_EQ(on.spans()[0].category, WaitCategory::kJoinWait);
  ASSERT_EQ(on.acquire_marks().size(), 1u);
  EXPECT_EQ(on.acquire_marks()[0].mutex, 1u);
}

TEST(Profiler, BreakdownListsEveryCategoryAndTopMutexes) {
  Profiler p(2);
  p.thread_begin(0);
  p.add_wait(0, WaitCategory::kTurnWait, 0, 1000, 5);
  p.on_acquire(0, 3, 1000, false, 1, 1000);
  p.thread_end(0, 100, 10);
  const std::string text = profile_breakdown(p.summary());
  for (std::size_t c = 0; c < kNumWaitCategories; ++c) {
    EXPECT_NE(text.find(wait_category_name(static_cast<WaitCategory>(c))), std::string::npos)
        << "missing category: " << wait_category_name(static_cast<WaitCategory>(c));
  }
  EXPECT_NE(text.find("useful execution"), std::string::npos);
  EXPECT_NE(text.find("m3"), std::string::npos);  // the contention table row
}

TEST(Profiler, ChromeTraceIsStructurallySoundJson) {
  Profiler p(2, /*keep_spans=*/true);
  p.thread_begin(0);
  p.thread_begin(1);
  p.add_wait(0, WaitCategory::kTurnWait, 100, 400, 2);
  p.on_acquire(0, 7, 300, false, 42, 400);
  p.thread_end(0, 10, 1);
  p.thread_end(1, 10, 1);

  const std::vector<TraceEvent> schedule = {{0, 7, 42}, {1, 7, 60}};
  const std::string json = profile_to_chrome_trace(p, schedule);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find(wait_category_name(WaitCategory::kTurnWait)), std::string::npos);
  EXPECT_NE(json.find("logical order"), std::string::npos);
  // Balanced delimiters (the emitter writes no strings containing braces, so
  // a straight count is a valid structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['), std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

}  // namespace
}  // namespace detlock::runtime
