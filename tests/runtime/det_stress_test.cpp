// Determinism stress: mixed lock/barrier/join traffic with injected timing
// perturbation.  The turn protocol must produce the identical acquisition
// trace no matter how threads are physically delayed -- this is the test
// family that catches "logical state flips at wake-up time" bugs (e.g. the
// barrier-republish race fixed in det_backend.cpp).
#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "runtime/det_backend.hpp"

namespace detlock::runtime {
namespace {

struct StressResult {
  std::uint64_t trace = 0;
  std::vector<std::uint64_t> final_clocks;

  bool operator==(const StressResult&) const = default;
};

/// Four threads run `rounds` of: compute (clock_add), grab one of 3 locks,
/// compute, barrier.  `perturb_seed` controls where random microsleeps are
/// injected; determinism demands the result be independent of it.
StressResult run_stress(std::uint64_t perturb_seed, int rounds) {
  RuntimeConfig config;
  config.max_threads = 8;
  config.keep_trace_events = false;
  DetBackend backend(config);
  const ThreadId main_t = backend.register_main_thread();
  const ThreadId w1 = backend.register_spawn(main_t);
  const ThreadId w2 = backend.register_spawn(main_t);
  const ThreadId w3 = backend.register_spawn(main_t);

  StressResult result;
  result.final_clocks.resize(4);

  auto body = [&](ThreadId self) {
    std::mt19937_64 rng(perturb_seed * 97 + self);
    for (int round = 0; round < rounds; ++round) {
      if (perturb_seed != 0 && rng() % 3 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(rng() % 200));
      }
      backend.clock_add(self, 20 + (self * 7 + static_cast<std::uint64_t>(round) * 13) % 40);
      const MutexId mutex = (self + static_cast<std::uint64_t>(round)) % 3;
      backend.lock(self, mutex);
      backend.clock_add(self, 5);
      backend.unlock(self, mutex);
      if (perturb_seed != 0 && rng() % 3 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(rng() % 200));
      }
      backend.barrier_wait(self, 0, 4);
    }
    result.final_clocks[self] = backend.clock_of(self);
  };

  std::thread t1(body, w1);
  std::thread t2(body, w2);
  std::thread t3(body, w3);
  body(main_t);
  t1.join();
  t2.join();
  t3.join();
  for (ThreadId t : {w1, w2, w3}) backend.thread_finish(t);
  backend.thread_finish(main_t);
  result.trace = backend.trace().fingerprint();
  return result;
}

TEST(DetStress, PerturbationsNeverChangeTheTrace) {
  const StressResult reference = run_stress(0, 20);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    EXPECT_EQ(run_stress(seed, 20), reference) << "perturbation seed " << seed;
  }
}

TEST(DetStress, LockOnlyContentionWithPerturbation) {
  auto run = [](std::uint64_t seed) {
    RuntimeConfig config;
    config.max_threads = 4;
    DetBackend backend(config);
    const ThreadId main_t = backend.register_main_thread();
    const ThreadId w1 = backend.register_spawn(main_t);
    const ThreadId w2 = backend.register_spawn(main_t);
    auto worker = [&](ThreadId self, std::uint64_t step) {
      std::mt19937_64 rng(seed * 31 + self);
      for (int i = 0; i < 60; ++i) {
        if (seed != 0 && rng() % 4 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(rng() % 100));
        }
        backend.clock_add(self, step);
        backend.lock(self, 0);
        backend.clock_add(self, 2);
        backend.unlock(self, 0);
      }
      backend.thread_finish(self);
    };
    std::thread t1(worker, w1, 11);
    std::thread t2(worker, w2, 23);
    backend.join(main_t, w1);
    backend.join(main_t, w2);
    t1.join();
    t2.join();
    const std::uint64_t main_clock = backend.clock_of(main_t);
    backend.thread_finish(main_t);
    return std::make_pair(backend.trace().fingerprint(), main_clock);
  };
  const auto reference = run(0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) EXPECT_EQ(run(seed), reference) << seed;
}

TEST(DetStress, ChunkedPublicationAlsoStable) {
  auto run = [](std::uint64_t seed) {
    RuntimeConfig config;
    config.max_threads = 4;
    config.publication = ClockPublication::kChunked;
    config.chunk_size = 64;
    DetBackend backend(config);
    const ThreadId main_t = backend.register_main_thread();
    const ThreadId w1 = backend.register_spawn(main_t);
    auto worker = [&](ThreadId self) {
      std::mt19937_64 rng(seed * 17 + self);
      for (int i = 0; i < 80; ++i) {
        if (seed != 0 && rng() % 4 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(rng() % 80));
        }
        backend.clock_add(self, 9);  // publishes only every ~7 adds
        backend.lock(self, 0);
        backend.unlock(self, 0);
      }
      backend.thread_finish(self);
    };
    std::thread t1(worker, w1);
    std::mt19937_64 rng(seed);
    for (int i = 0; i < 80; ++i) {
      if (seed != 0 && rng() % 4 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(rng() % 80));
      }
      backend.clock_add(main_t, 14);
      backend.lock(main_t, 0);
      backend.unlock(main_t, 0);
    }
    backend.join(main_t, w1);
    t1.join();
    backend.thread_finish(main_t);
    return backend.trace().fingerprint();
  };
  const std::uint64_t reference = run(0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) EXPECT_EQ(run(seed), reference) << seed;
}

}  // namespace
}  // namespace detlock::runtime
