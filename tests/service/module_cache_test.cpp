// ModuleCache: content addressing, single-flight compilation, LRU bounds,
// and failure propagation -- with an injected compile function so the tests
// count real compiler invocations.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "service/module_cache.hpp"

namespace detlock {
namespace {

constexpr const char* kProgramA = R"(
func @main(0) regs=8 {
block entry:
  %0 = const 1
  ret %0
}
)";

constexpr const char* kProgramB = R"(
func @main(0) regs=8 {
block entry:
  %0 = const 2
  ret %0
}
)";

service::CompileOptions default_options() { return service::compile_options(api::RunConfig{}); }

TEST(ModuleKeyTest, DistinguishesTextAndOptions) {
  const service::CompileOptions options = default_options();
  EXPECT_EQ(service::module_key(kProgramA, options), service::module_key(kProgramA, options));
  EXPECT_NE(service::module_key(kProgramA, options), service::module_key(kProgramB, options));

  service::CompileOptions other = options;
  other.pass_options.opt4_loops = !other.pass_options.opt4_loops;
  EXPECT_NE(service::module_key(kProgramA, options), service::module_key(kProgramA, other));

  other = options;
  other.engine = interp::EngineKind::kReference;
  EXPECT_NE(service::module_key(kProgramA, options), service::module_key(kProgramA, other));

  other = options;
  other.mode = api::Mode::kBaseline;
  EXPECT_NE(service::module_key(kProgramA, options), service::module_key(kProgramA, other));

  other = options;
  other.estimates_text = "helper 3\n";
  EXPECT_NE(service::module_key(kProgramA, options), service::module_key(kProgramA, other));
}

TEST(ModuleCacheTest, CompilesOncePerKey) {
  std::atomic<int> compiles{0};
  service::ModuleCache cache(8, [&](std::string_view text, const service::CompileOptions& options) {
    ++compiles;
    return service::CompiledModule::compile(text, options);
  });
  const service::CompileOptions options = default_options();

  bool hit = true;
  const auto first = cache.get_or_compile(kProgramA, options, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get_or_compile(kProgramA, options, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // the same shared artifact
  EXPECT_EQ(compiles.load(), 1);

  cache.get_or_compile(kProgramB, options);
  EXPECT_EQ(compiles.load(), 2);

  const service::ModuleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ModuleCacheTest, LruEvictsLeastRecentlyUsed) {
  std::atomic<int> compiles{0};
  service::ModuleCache cache(2, [&](std::string_view text, const service::CompileOptions& options) {
    ++compiles;
    return service::CompiledModule::compile(text, options);
  });
  service::CompileOptions a = default_options();
  service::CompileOptions b = a;
  b.pass_options.opt1_function_clocking = !b.pass_options.opt1_function_clocking;
  service::CompileOptions c = a;
  c.pass_options.opt3_averaging = !c.pass_options.opt3_averaging;

  cache.get_or_compile(kProgramA, a);
  cache.get_or_compile(kProgramA, b);
  cache.get_or_compile(kProgramA, a);  // touch a: b is now the LRU victim
  cache.get_or_compile(kProgramA, c);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);

  bool hit = false;
  cache.get_or_compile(kProgramA, a, &hit);
  EXPECT_TRUE(hit);  // a survived
  cache.get_or_compile(kProgramA, b, &hit);
  EXPECT_FALSE(hit);  // b was evicted and recompiled
  EXPECT_EQ(compiles.load(), 4);
}

TEST(ModuleCacheTest, FailuresPropagateAndAreNotCached) {
  std::atomic<int> compiles{0};
  service::ModuleCache cache(8, [&](std::string_view text, const service::CompileOptions& options) {
    ++compiles;
    return service::CompiledModule::compile(text, options);
  });
  const service::CompileOptions options = default_options();
  EXPECT_THROW(cache.get_or_compile("func @broken(", options), service::ParseError);
  EXPECT_THROW(cache.get_or_compile("func @broken(", options), service::ParseError);
  EXPECT_EQ(compiles.load(), 2);  // the failure was not cached: retried
  EXPECT_EQ(cache.stats().compile_errors, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ModuleCacheTest, SingleFlightAcrossThreads) {
  std::atomic<int> compiles{0};
  service::ModuleCache cache(8, [&](std::string_view text, const service::CompileOptions& options) {
    ++compiles;
    // Widen the race window: every thread should pile onto this flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return service::CompiledModule::compile(text, options);
  });
  const service::CompileOptions options = default_options();

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const service::CompiledModule>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { results[t] = cache.get_or_compile(kProgramA, options); });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(compiles.load(), 1);  // single flight
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[t].get(), results[0].get());
  const service::ModuleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

}  // namespace
}  // namespace detlock
