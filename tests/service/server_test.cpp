// Server/Session end to end over real sockets: the wire protocol, the
// determinism invariant (frames match a serial BatchExecutor reference
// byte for byte), admission RETRY_AFTER under saturation, server-side
// deadlines, crash retry, kill-a-client-mid-stream, and graceful drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/batch_executor.hpp"
#include "service/server.hpp"
#include "support/strings.hpp"

namespace detlock {
namespace {

constexpr const char* kOkProgram = R"(
func @main(0) regs=16 {
block entry:
  %0 = const 0
  lock %0
  %1 = const 100
  %2 = const 7
  store %1, %2
  unlock %0
  %3 = load %1
  ret %3
}
)";

constexpr const char* kContendedProgram = R"(
func @worker(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 20
  br loop
block loop:
  %3 = icmp lt %1, %2
  condbr %3, body, done
block body:
  %4 = const 0
  lock %4
  %5 = const 100
  %6 = load %5
  %7 = add %6, %0
  store %5, %7
  unlock %4
  %8 = const 1
  %1 = add %1, %8
  br loop
block done:
  ret
}
func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = spawn @worker(%2)
  %4 = const 3
  %5 = call @worker(%4)
  join %1
  join %3
  %6 = const 100
  %7 = load %6
  ret %7
}
)";

// ABBA deadlock under the turn protocol: the guaranteed-slow job (runs to
// its watchdog) and the deadline-classification fixture.
constexpr const char* kAbbaProgram = R"(
func @worker_ab(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 1
  lock %1
  %4 = const 0
  %5 = const 64
  %6 = const 1
  br spin
block spin:
  %4 = add %4, %6
  %7 = icmp lt %4, %5
  condbr %7, spin, rest
block rest:
  lock %2
  %3 = const 200
  store %3, %0
  unlock %2
  unlock %1
  ret
}
func @worker_ba(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 1
  lock %2
  %4 = const 0
  %5 = const 64
  %6 = const 1
  br spin
block spin:
  %4 = add %4, %6
  %7 = icmp lt %4, %5
  condbr %7, spin, rest
block rest:
  lock %1
  %3 = const 201
  store %3, %0
  unlock %1
  unlock %2
  ret
}
func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @worker_ab(%0)
  %2 = const 2
  %3 = spawn @worker_ba(%2)
  join %1
  join %3
  %4 = const 0
  ret %4
}
)";

/// Minimal line-framed client over TCP or Unix sockets.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    connect_and_arm(reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  }
  explicit TestClient(const std::string& unix_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, unix_path.c_str(), unix_path.size() + 1);
    connect_and_arm(reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  /// Simulates a vanished client: socket gone, no QUIT, no draining reads.
  void close_abruptly() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_line(const std::string& line) { send_raw(line + "\n"); }

  void send_job(const std::string& name, const std::string& ir, const std::string& options = "") {
    std::string header = "JOB " + name + " " + std::to_string(ir.size());
    if (!options.empty()) header += " " + options;
    send_raw(header + "\n" + ir);
  }

  /// One newline-terminated frame, or "" on EOF/error/timeout.
  std::string read_frame() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string frame = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return frame;
      }
      char tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) return "";
      buf_.append(tmp, static_cast<std::size_t>(n));
    }
  }

 private:
  void connect_and_arm(sockaddr* sa, socklen_t len) {
    ASSERT_GE(fd_, 0);
    ASSERT_EQ(::connect(fd_, sa, len), 0) << std::strerror(errno);
    timeval tv{};
    tv.tv_sec = 60;  // generous: sanitizer builds on loaded machines
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  void send_raw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  int fd_ = -1;
  std::string buf_;
};

bool frame_has(const std::string& frame, const std::string& key, const std::string& json_value) {
  return frame.find("\"" + key + "\": " + json_value) != std::string::npos;
}

bool frame_is(const std::string& frame, const std::string& type) {
  return frame_has(frame, "type", "\"" + type + "\"");
}

/// Extracts a JSON string field ("key": "value") or "" when absent.
std::string frame_str(const std::string& frame, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t pos = frame.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + needle.size();
  const std::size_t end = frame.find('"', start);
  return frame.substr(start, end - start);
}

service::ServerOptions base_options() {
  service::ServerOptions options;
  options.listen = "tcp:127.0.0.1:0";
  options.workers = 2;
  options.queue_capacity = 4;
  options.deadline_ms = 20'000;
  options.drain_timeout_ms = 2'000;
  return options;
}

/// Drains the server from a helper thread and returns its exit code.
int drain(service::Server& server) {
  server.request_drain();
  return server.run_until_drained();
}

TEST(ServerTest, PingStatsQuitRoundTrip) {
  service::Server server(base_options());
  server.start();
  ASSERT_GT(server.port(), 0);
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    client.send_line("PING");
    EXPECT_TRUE(frame_is(client.read_frame(), "pong"));
    client.send_line("STATS");
    const std::string stats = client.read_frame();
    EXPECT_TRUE(frame_is(stats, "stats"));
    EXPECT_TRUE(frame_has(stats, "queue_capacity", "4"));
    EXPECT_TRUE(frame_has(stats, "draining", "false"));
    client.send_line("FROB");
    EXPECT_TRUE(frame_is(client.read_frame(), "error"));
    client.send_line("QUIT");
    EXPECT_TRUE(frame_is(client.read_frame(), "bye"));
  }
  EXPECT_EQ(drain(server), 0);
}

TEST(ServerTest, UnixSocketListenerWorks) {
  const std::string path = "/tmp/detserved_test_" + std::to_string(::getpid()) + ".sock";
  service::ServerOptions options = base_options();
  options.listen = "unix:" + path;
  service::Server server(options);
  server.start();
  {
    TestClient client(path);
    ASSERT_TRUE(client.connected());
    client.send_line("PING");
    EXPECT_TRUE(frame_is(client.read_frame(), "pong"));
  }
  EXPECT_EQ(drain(server), 0);
  EXPECT_NE(::access(path.c_str(), F_OK), 0);  // socket file cleaned up
}

TEST(ServerTest, ResultMatchesSerialReferenceByteForByte) {
  // Serial reference: the exact same payload through a plain BatchExecutor.
  service::ModuleCache cache(4);
  service::BatchExecutor reference_exec(cache, {.workers = 1, .queue_capacity = 4});
  service::JobSpec ref_spec;
  ref_spec.name = "contended";
  ref_spec.ir_text = kContendedProgram;
  ref_spec.config.runs = 2;
  ref_spec.config.keep_trace_events = false;
  reference_exec.submit(std::move(ref_spec));
  const service::JobResult& reference = reference_exec.wait()[0];
  ASSERT_EQ(reference.status, service::JobStatus::kOk);

  service::Server server(base_options());
  server.start();
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    client.send_job("contended", kContendedProgram, "runs=2");
    const std::string accepted = client.read_frame();
    ASSERT_TRUE(frame_is(accepted, "accepted")) << accepted;
    const std::string result = client.read_frame();
    ASSERT_TRUE(frame_is(result, "result")) << result;
    EXPECT_TRUE(frame_has(result, "status", "\"ok\"")) << result;
    EXPECT_TRUE(frame_has(result, "attempts", "1"));
    EXPECT_TRUE(frame_has(result, "runs_completed", "2"));
    EXPECT_EQ(frame_str(result, "lock_order_fingerprint"),
              str_format("%016llx", static_cast<unsigned long long>(reference.trace_fingerprint)));
    EXPECT_EQ(frame_str(result, "memory_fingerprint"),
              str_format("%016llx", static_cast<unsigned long long>(reference.memory_fingerprint)));
  }
  EXPECT_EQ(drain(server), 0);
}

TEST(ServerTest, ServerSideDeadlineClassifiesDeadlock) {
  service::ServerOptions options = base_options();
  options.deadline_ms = 1'500;  // the job itself sets no watchdog
  service::Server server(options);
  server.start();
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    client.send_job("abba", kAbbaProgram);
    ASSERT_TRUE(frame_is(client.read_frame(), "accepted"));
    const std::string result = client.read_frame();
    ASSERT_TRUE(frame_is(result, "result")) << result;
    EXPECT_TRUE(frame_has(result, "status", "\"deadlock\"")) << result;
    EXPECT_TRUE(frame_has(result, "exit_code", "8"));
  }
  EXPECT_EQ(drain(server), 0);
}

TEST(ServerTest, SaturationAnswersRetryAfterInsteadOfBlocking) {
  service::ServerOptions options = base_options();
  options.workers = 1;
  options.queue_capacity = 1;
  options.admission.client_backlog_cap = 2;
  options.deadline_ms = 800;  // keeps the slow jobs bounded
  service::Server server(options);
  server.start();
  int accepted = 0;
  int retry_after = 0;
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    // Back-to-back slow jobs: the burst lands before the dispatcher can
    // drain the 2-deep lane, so the overflow must bounce with a
    // structured retry hint instead of blocking the connection.
    constexpr int kJobs = 6;
    for (int j = 0; j < kJobs; ++j) {
      client.send_job("slow" + std::to_string(j), kAbbaProgram);
    }
    int results = 0;
    // Every admitted job resolves; every rejection names its reason.
    while (results < accepted || accepted + retry_after < kJobs) {
      const std::string frame = client.read_frame();
      ASSERT_FALSE(frame.empty()) << "connection died mid-stream";
      if (frame_is(frame, "accepted")) {
        ++accepted;
      } else if (frame_is(frame, "retry_after")) {
        ++retry_after;
        EXPECT_TRUE(frame_has(frame, "reason", "\"queue-full\"")) << frame;
        EXPECT_FALSE(frame_str(frame, "reason").empty());
      } else if (frame_is(frame, "result")) {
        ++results;
        EXPECT_TRUE(frame_has(frame, "exit_code", "8")) << frame;
      } else {
        FAIL() << "unexpected frame: " << frame;
      }
    }
    EXPECT_GE(retry_after, 1);
    EXPECT_GE(accepted, 2);
    client.send_line("STATS");
    std::string stats = client.read_frame();
    while (!stats.empty() && !frame_is(stats, "stats")) stats = client.read_frame();
    EXPECT_TRUE(frame_has(stats, "draining", "false"));
  }
  EXPECT_EQ(drain(server), 0);
}

TEST(ServerTest, CrashRetryRecoversWithAttemptsTwo) {
  service::ServerOptions options = base_options();
  options.workers = 1;
  options.chaos_crash_every = 1;  // every first attempt crashes its worker
  options.crash_retry_backoff_ms = 5;
  service::Server server(options);
  server.start();
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    client.send_job("crashy", kOkProgram);
    ASSERT_TRUE(frame_is(client.read_frame(), "accepted"));
    const std::string result = client.read_frame();
    ASSERT_TRUE(frame_is(result, "result")) << result;
    // The crash was absorbed: one retry, deterministic final answer.
    EXPECT_TRUE(frame_has(result, "status", "\"ok\"")) << result;
    EXPECT_TRUE(frame_has(result, "attempts", "2")) << result;
    EXPECT_TRUE(frame_has(result, "result", "7"));
    client.send_line("STATS");
    const std::string stats = client.read_frame();
    EXPECT_TRUE(frame_has(stats, "retried", "1")) << stats;
  }
  EXPECT_EQ(drain(server), 0);
}

TEST(ServerTest, KilledClientMidStreamDoesNotPoisonTheServer) {
  service::ServerOptions options = base_options();
  options.workers = 1;
  service::Server server(options);
  server.start();
  {
    TestClient victim(server.port());
    ASSERT_TRUE(victim.connected());
    for (int j = 0; j < 4; ++j) {
      victim.send_job("doomed" + std::to_string(j), kContendedProgram, "runs=2");
    }
    // Vanish without reading a single frame.
    victim.close_abruptly();
  }
  {
    TestClient survivor(server.port());
    ASSERT_TRUE(survivor.connected());
    survivor.send_job("healthy", kOkProgram);
    ASSERT_TRUE(frame_is(survivor.read_frame(), "accepted"));
    const std::string result = survivor.read_frame();
    EXPECT_TRUE(frame_has(result, "status", "\"ok\"")) << result;
    EXPECT_TRUE(frame_has(result, "result", "7"));
  }
  // Drain still converges: the victim's jobs were resolved or dropped.
  EXPECT_EQ(drain(server), 0);
}

TEST(ServerTest, GracefulDrainAbortsBacklogAndReportsDrained) {
  service::ServerOptions options = base_options();
  options.workers = 1;
  options.queue_capacity = 1;
  options.admission.client_backlog_cap = 8;
  options.deadline_ms = 1'000;
  options.drain_timeout_ms = 150;  // expires long before the slow jobs
  service::Server server(options);
  server.start();

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  constexpr int kJobs = 5;
  for (int j = 0; j < kJobs; ++j) {
    client.send_job("drainme" + std::to_string(j), kAbbaProgram);
  }
  for (int j = 0; j < kJobs; ++j) {
    ASSERT_TRUE(frame_is(client.read_frame(), "accepted"));
  }

  std::thread drainer([&] { EXPECT_EQ(drain(server), 0); });
  int deadlocked = 0;
  int aborted = 0;
  bool drained = false;
  for (;;) {
    const std::string frame = client.read_frame();
    ASSERT_FALSE(frame.empty()) << "connection died before the drained frame";
    if (frame_is(frame, "result")) {
      if (frame_has(frame, "exit_code", "8")) ++deadlocked;
      if (frame_has(frame, "exit_code", "4")) {
        ++aborted;
        EXPECT_TRUE(frame_has(frame, "status", "\"aborted\"")) << frame;
      }
    } else if (frame_is(frame, "drained")) {
      drained = true;
      EXPECT_TRUE(frame_has(frame, "clean", "true")) << frame;
      break;
    }
  }
  drainer.join();
  EXPECT_TRUE(drained);
  EXPECT_EQ(deadlocked + aborted, kJobs);  // every accepted job resolved
  EXPECT_GE(deadlocked, 1);                // the in-flight one ran to its watchdog
  EXPECT_GE(aborted, 1);                   // the backlog was aborted, not dropped
}

// The acceptance gate: concurrent clients, mixed workloads, chaos crashes,
// queue pressure -- every fingerprint must equal the serial reference.
TEST(ServerTest, ChaosUnderLoadStaysByteIdenticalToSerialReference) {
  struct Payload {
    std::string ir;
    std::string options;
    service::JobSpec spec;
  };
  std::map<std::string, Payload> payloads;
  {
    Payload ok;
    ok.ir = kOkProgram;
    payloads["ok"] = ok;

    Payload contended;
    contended.ir = kContendedProgram;
    contended.options = "runs=2";
    contended.spec.config.runs = 2;
    payloads["contended"] = contended;

    Payload chaos;
    chaos.ir = kContendedProgram;
    chaos.options = "chaos=1 chaos-trials=2 chaos-seed=17";
    chaos.spec.config.chaos = true;
    chaos.spec.config.chaos_trials = 2;
    chaos.spec.config.chaos_seed = 17;
    payloads["chaos"] = chaos;

    Payload profiled;
    profiled.ir = kContendedProgram;
    profiled.options = "profile=1";
    profiled.spec.config.profile = true;
    payloads["profiled"] = profiled;
  }

  // Serial reference fingerprints, one BatchExecutor worker, no server.
  std::map<std::string, std::pair<std::string, std::string>> reference;
  {
    service::ModuleCache cache(8);
    service::BatchExecutor exec(cache, {.workers = 1, .queue_capacity = 8});
    for (auto& [name, payload] : payloads) {
      service::JobSpec spec = payload.spec;
      spec.name = name;
      spec.ir_text = payload.ir;
      spec.config.keep_trace_events = false;
      exec.submit(std::move(spec));
    }
    for (const service::JobResult& r : exec.wait()) {
      ASSERT_EQ(r.status, service::JobStatus::kOk) << r.name << ": " << r.error;
      reference[r.name] = {
          str_format("%016llx", static_cast<unsigned long long>(r.trace_fingerprint)),
          str_format("%016llx", static_cast<unsigned long long>(r.memory_fingerprint))};
    }
  }

  service::ServerOptions options = base_options();
  options.workers = 3;
  options.queue_capacity = 2;
  options.chaos_crash_every = 5;  // periodic worker crashes under load
  options.crash_retry_backoff_ms = 5;
  service::Server server(options);
  server.start();

  constexpr int kClients = 3;
  constexpr int kRounds = 2;
  std::atomic<int> mismatches{0};
  std::atomic<int> results_seen{0};
  std::atomic<int> retries_seen{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(server.port());
      if (!client.connected()) {
        ++mismatches;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& [base_name, payload] : payloads) {
          const std::string name =
              base_name + "-c" + std::to_string(c) + "-r" + std::to_string(round);
          // Submit, honoring RETRY_AFTER (briefly) on saturation.
          std::string result;
          for (;;) {
            client.send_job(name, payload.ir, payload.options);
            std::string frame = client.read_frame();
            if (frame_is(frame, "retry_after")) {
              ++retries_seen;
              std::this_thread::sleep_for(std::chrono::milliseconds(10));
              continue;
            }
            if (!frame_is(frame, "accepted")) {
              ++mismatches;
              return;
            }
            result = client.read_frame();
            break;
          }
          ++results_seen;
          if (!frame_is(result, "result") || !frame_has(result, "status", "\"ok\"") ||
              frame_str(result, "lock_order_fingerprint") != reference[base_name].first ||
              frame_str(result, "memory_fingerprint") != reference[base_name].second) {
            ADD_FAILURE() << "divergent or failed frame for " << name << ": " << result;
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(results_seen.load(), kClients * kRounds * static_cast<int>(payloads.size()));

  // The chaos really fired: at least one crash got retried.
  TestClient stats_client(server.port());
  ASSERT_TRUE(stats_client.connected());
  stats_client.send_line("STATS");
  const std::string stats = stats_client.read_frame();
  EXPECT_TRUE(frame_is(stats, "stats"));
  EXPECT_FALSE(frame_has(stats, "retried", "0")) << stats;
  EXPECT_FALSE(frame_has(stats, "crashed", "0")) << stats;

  EXPECT_EQ(drain(server), 0);
}

}  // namespace
}  // namespace detlock
