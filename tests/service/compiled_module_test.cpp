// CompiledModule: the immutable artifact's construction contract -- staged
// errors, per-mode instrumentation, decoded-code finalization, and the
// ExecutionContext compatibility checks.
#include <gtest/gtest.h>

#include "interp/decode.hpp"
#include "service/compiled_module.hpp"
#include "service/execution_context.hpp"

namespace detlock {
namespace {

constexpr const char* kCounterProgram = R"(
func @main(0) regs=16 {
block entry:
  %0 = const 0
  lock %0
  %1 = const 100
  %2 = const 7
  store %1, %2
  unlock %0
  %3 = load %1
  ret %3
}
)";

service::CompileOptions options_for(api::Mode mode,
                                    interp::EngineKind engine = interp::EngineKind::kDecoded) {
  api::RunConfig config;
  config.mode = mode;
  config.engine = engine;
  return service::compile_options(config);
}

TEST(CompiledModuleTest, ParseFailureThrowsParseError) {
  EXPECT_THROW(service::CompiledModule::compile("func @broken(", options_for(api::Mode::kDetLock)),
               service::ParseError);
}

TEST(CompiledModuleTest, VerifyFailureThrowsVerifyError) {
  // Parses fine, but calls @callee with the wrong arity.
  constexpr const char* bad = R"(
func @callee(2) regs=4 {
block entry:
  ret
}
func @main(0) regs=4 {
block entry:
  %0 = const 1
  %1 = call @callee(%0)
  ret %1
}
)";
  EXPECT_THROW(service::CompiledModule::compile(bad, options_for(api::Mode::kDetLock)),
               service::VerifyError);
}

TEST(CompiledModuleTest, BaselineSkipsInstrumentation) {
  const auto cm = service::CompiledModule::compile(kCounterProgram, options_for(api::Mode::kBaseline));
  EXPECT_EQ(cm->pass_stats().materialized.clock_add_sites, 0u);
}

TEST(CompiledModuleTest, DetLockInstruments) {
  const auto cm = service::CompiledModule::compile(kCounterProgram, options_for(api::Mode::kDetLock));
  EXPECT_GT(cm->pass_stats().materialized.clock_add_sites, 0u);
}

TEST(CompiledModuleTest, DecodedEngineGetsFinalizedCode) {
  const auto cm = service::CompiledModule::compile(kCounterProgram, options_for(api::Mode::kDetLock));
  ASSERT_NE(cm->decoded(), nullptr);
  // Finalized = handler pointers patched at compile time (computed-goto
  // builds) so engines can share the arrays read-only.
  EXPECT_TRUE(interp::decoded_handlers_resolved(*cm->decoded()));
}

TEST(CompiledModuleTest, ReferenceEngineHasNoDecodedCode) {
  const auto cm = service::CompiledModule::compile(
      kCounterProgram, options_for(api::Mode::kDetLock, interp::EngineKind::kReference));
  EXPECT_EQ(cm->decoded(), nullptr);
}

TEST(CompiledModuleTest, ExecutionContextRunsArtifact) {
  const auto cm = service::CompiledModule::compile(kCounterProgram, options_for(api::Mode::kDetLock));
  api::RunConfig config;
  config.memory_words = 1 << 10;
  service::ExecutionContext ctx(cm, config);
  EXPECT_EQ(ctx.run("main").main_return, 7);
  // The context is reusable: each run() is an independent engine.
  EXPECT_EQ(ctx.run("main").main_return, 7);
}

TEST(CompiledModuleTest, ExecutionContextRejectsMismatchedConfig) {
  const auto cm = service::CompiledModule::compile(kCounterProgram, options_for(api::Mode::kDetLock));
  api::RunConfig config;
  config.mode = api::Mode::kBaseline;  // artifact was compiled for kDetLock
  EXPECT_THROW(service::ExecutionContext(cm, config), Error);
}

TEST(CompiledModuleTest, EstimatesTextIsApplied) {
  constexpr const char* with_extern = R"(
extern @helper(1)

func @main(0) regs=8 {
block entry:
  %0 = const 5
  ret %0
}
)";
  service::CompileOptions options = options_for(api::Mode::kDetLock);
  options.estimates_text = "helper 12\n";
  const auto cm = service::CompiledModule::compile(with_extern, options);
  ASSERT_EQ(cm->module().externs().size(), 1u);
  ASSERT_TRUE(cm->module().extern_decl(0).estimate.has_value());
  EXPECT_EQ(cm->module().extern_decl(0).estimate->base, 12);
}

}  // namespace
}  // namespace detlock
