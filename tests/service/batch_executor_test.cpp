// BatchExecutor: result ordering, the full status/exit-code surface, cache
// sharing across a batch, schedule capture, watchdog isolation, and the
// serving-layer surface -- non-blocking try_submit with typed rejections,
// cancel_pending drain aborts, worker-crash containment, and warm-context
// reuse.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <variant>

#include "service/batch_executor.hpp"
#include "service/context_pool.hpp"
#include "support/error.hpp"

namespace detlock {
namespace {

constexpr const char* kOkProgram = R"(
func @main(0) regs=16 {
block entry:
  %0 = const 0
  lock %0
  %1 = const 100
  %2 = const 7
  store %1, %2
  unlock %0
  %3 = load %1
  ret %3
}
)";

// share/programs/hello_locks.dl, inlined: three workers contending on one
// lock -- enough acquisitions that nondeterministic chaos runs diverge.
constexpr const char* kContendedProgram = R"(
func @worker(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 20
  br loop
block loop:
  %3 = icmp lt %1, %2
  condbr %3, body, done
block body:
  %4 = const 0
  lock %4
  %5 = const 100
  %6 = load %5
  %7 = add %6, %0
  store %5, %7
  %8 = const 101
  store %8, %0
  unlock %4
  %9 = const 1
  %1 = add %1, %9
  br loop
block done:
  ret
}
func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = spawn @worker(%2)
  %4 = const 3
  %5 = call @worker(%4)
  join %1
  join %3
  %6 = const 101
  %7 = load %6
  ret %7
}
)";

// share/programs/abba_deadlock.dl, inlined: deterministically deadlocks
// under the turn protocol (see that file's header comment).
constexpr const char* kAbbaProgram = R"(
func @worker_ab(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 1
  lock %1
  %4 = const 0
  %5 = const 64
  %6 = const 1
  br spin
block spin:
  %4 = add %4, %6
  %7 = icmp lt %4, %5
  condbr %7, spin, rest
block rest:
  lock %2
  %3 = const 200
  store %3, %0
  unlock %2
  unlock %1
  ret
}
func @worker_ba(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 1
  lock %2
  %4 = const 0
  %5 = const 64
  %6 = const 1
  br spin
block spin:
  %4 = add %4, %6
  %7 = icmp lt %4, %5
  condbr %7, spin, rest
block rest:
  lock %1
  %3 = const 201
  store %3, %0
  unlock %1
  unlock %2
  ret
}
func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @worker_ab(%0)
  %2 = const 2
  %3 = spawn @worker_ba(%2)
  join %1
  join %3
  %4 = const 0
  ret %4
}
)";

service::JobSpec ok_job(const std::string& name) {
  service::JobSpec spec;
  spec.name = name;
  spec.ir_text = kOkProgram;
  spec.config.memory_words = 1 << 10;
  return spec;
}

TEST(BatchExecutorTest, ResultsComeBackInSubmitOrder) {
  service::ModuleCache cache(8);
  service::BatchExecutor executor(cache, {.workers = 4, .queue_capacity = 8});
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(executor.submit(ok_job("job" + std::to_string(j))), static_cast<std::size_t>(j));
  }
  const std::vector<service::JobResult>& results = executor.wait();
  ASSERT_EQ(results.size(), 6u);
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(results[j].name, "job" + std::to_string(j));
    EXPECT_EQ(results[j].status, service::JobStatus::kOk);
    EXPECT_EQ(results[j].exit_code, 0);
    EXPECT_EQ(results[j].main_return, 7);
    EXPECT_EQ(results[j].runs_completed, 1);
  }
  EXPECT_EQ(executor.stats().jobs_completed, 6u);
}

TEST(BatchExecutorTest, IdenticalJobsShareOneCompile) {
  service::ModuleCache cache(8);
  service::BatchExecutor executor(cache, {.workers = 2, .queue_capacity = 8});
  for (int j = 0; j < 5; ++j) executor.submit(ok_job("job" + std::to_string(j)));
  const auto& results = executor.wait();
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 5u);
  int hits = 0;
  for (const auto& r : results) hits += r.cache_hit ? 1 : 0;
  EXPECT_EQ(hits, 4);  // exactly one job carried the compile
}

TEST(BatchExecutorTest, StatusSurface) {
  service::ModuleCache cache(8);
  service::BatchExecutor executor(cache, {.workers = 2, .queue_capacity = 8});

  service::JobSpec bad_config = ok_job("bad-config");
  bad_config.config.runs = 0;
  executor.submit(std::move(bad_config));

  service::JobSpec parse = ok_job("parse");
  parse.ir_text = "func @broken(";
  executor.submit(std::move(parse));

  service::JobSpec verify = ok_job("verify");
  verify.ir_text =
      "func @callee(2) regs=4 {\nblock entry:\n  ret\n}\n"
      "func @main(0) regs=4 {\nblock entry:\n  %0 = const 1\n  %1 = call @callee(%0)\n  ret %1\n}\n";
  executor.submit(std::move(verify));

  service::JobSpec deadlock = ok_job("deadlock");
  deadlock.ir_text = kAbbaProgram;
  deadlock.config.watchdog_ms = 2000;
  executor.submit(std::move(deadlock));

  executor.submit(ok_job("fine"));

  const auto& results = executor.wait();
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].status, service::JobStatus::kInvalidConfig);
  EXPECT_EQ(results[0].exit_code, 2);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_EQ(results[1].status, service::JobStatus::kParseError);
  EXPECT_EQ(results[1].exit_code, 5);
  EXPECT_EQ(results[2].status, service::JobStatus::kVerifyError);
  EXPECT_EQ(results[2].exit_code, 6);
  EXPECT_EQ(results[3].status, service::JobStatus::kDeadlock);
  EXPECT_EQ(results[3].exit_code, 8);
  EXPECT_NE(results[3].error.find("DEADLOCK"), std::string::npos);
  // The stalled neighbor never leaks into a healthy job:
  EXPECT_EQ(results[4].status, service::JobStatus::kOk);
}

TEST(BatchExecutorTest, DeterministicRepeatsAgreeAndScheduleIsCaptured) {
  service::ModuleCache cache(8);
  service::BatchExecutor executor(cache, {.workers = 2, .queue_capacity = 8});
  service::JobSpec spec = ok_job("repeat");
  spec.ir_text = kContendedProgram;
  spec.config.runs = 3;
  spec.collect_schedule = true;
  executor.submit(std::move(spec));
  const auto& results = executor.wait();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, service::JobStatus::kOk);
  EXPECT_EQ(results[0].runs_completed, 3);
  EXPECT_GT(results[0].lock_acquires, 0u);
  EXPECT_FALSE(results[0].schedule.empty());
}

TEST(BatchExecutorTest, ChaosDivergenceIsDetectedInNondetMode) {
  // Under kClocksOnly the turn protocol is off, so timing chaos reorders the
  // 60+ contended acquisitions and the fingerprints disagree.  (Under
  // kDetLock the same job is bit-identical -- that is the concurrent
  // determinism test's job to prove.)
  service::ModuleCache cache(8);
  service::BatchExecutor executor(cache, {.workers = 1, .queue_capacity = 4});
  service::JobSpec spec = ok_job("nondet-chaos");
  spec.ir_text = kContendedProgram;
  spec.config.mode = api::Mode::kClocksOnly;
  spec.config.chaos = true;
  spec.config.chaos_trials = 3;
  spec.config.chaos_seed = 17;
  executor.submit(std::move(spec));
  const auto& results = executor.wait();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, service::JobStatus::kDivergent);
  EXPECT_EQ(results[0].exit_code, 3);
}

TEST(BatchExecutorTest, BackpressureBoundsTheQueueButLosesNothing) {
  service::ModuleCache cache(8);
  service::BatchExecutor executor(cache, {.workers = 1, .queue_capacity = 2});
  constexpr int kJobs = 10;
  for (int j = 0; j < kJobs; ++j) executor.submit(ok_job("job" + std::to_string(j)));
  const auto& results = executor.wait();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kJobs));
  for (const auto& r : results) EXPECT_EQ(r.status, service::JobStatus::kOk);
  EXPECT_LE(executor.stats().peak_queue_depth, 2u);
}

/// Blocks every job in the pre-execute hook until opened -- the tests'
/// handle on worker occupancy (no sleeps, no timing assumptions).
class Gate {
 public:
  void block(service::BatchExecutor::Options& options) {
    options.pre_execute_hook = [this](const service::JobSpec&) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    };
  }
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

bool poll_until(const std::function<bool()>& done) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

TEST(BatchExecutorTest, TrySubmitRejectsWhenFullAndReacceptsAfterDrain) {
  service::ModuleCache cache(8);
  Gate gate;
  service::BatchExecutor::Options options;
  options.workers = 1;
  options.queue_capacity = 2;
  gate.block(options);
  service::BatchExecutor executor(cache, options);

  executor.submit(ok_job("blocker"));
  // The single worker parks in the hook; wait for it to have dequeued.
  ASSERT_TRUE(poll_until([&] { return executor.queue_depth() == 0; }));

  // Fill the queue, then hit the bound: a typed rejection, never a block.
  EXPECT_TRUE(std::holds_alternative<std::size_t>(executor.try_submit(ok_job("q1"))));
  EXPECT_TRUE(std::holds_alternative<std::size_t>(executor.try_submit(ok_job("q2"))));
  const auto rejected = executor.try_submit(ok_job("rejected"));
  ASSERT_TRUE(std::holds_alternative<service::SubmitRejection>(rejected));
  EXPECT_EQ(std::get<service::SubmitRejection>(rejected), service::SubmitRejection::kQueueFull);
  EXPECT_EQ(executor.stats().rejected_full, 1u);
  EXPECT_EQ(executor.queue_depth(), 2u);

  // Post-drain re-acceptance: once the worker drains the queue, the same
  // submission goes through.
  gate.open();
  ASSERT_TRUE(poll_until([&] { return executor.queue_depth() < 2; }));
  EXPECT_TRUE(std::holds_alternative<std::size_t>(executor.try_submit(ok_job("after-drain"))));

  const auto& results = executor.wait();
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) EXPECT_EQ(r.status, service::JobStatus::kOk) << r.name;

  // After wait() the queue is closed: a different typed rejection.
  const auto closed = executor.try_submit(ok_job("late"));
  ASSERT_TRUE(std::holds_alternative<service::SubmitRejection>(closed));
  EXPECT_EQ(std::get<service::SubmitRejection>(closed), service::SubmitRejection::kClosed);
}

TEST(BatchExecutorTest, CancelPendingAbortsQueuedJobsAndDeliversResults) {
  service::ModuleCache cache(8);
  Gate gate;
  std::mutex seen_mutex;
  std::vector<std::string> completions;
  service::BatchExecutor::Options options;
  options.workers = 1;
  options.queue_capacity = 8;
  gate.block(options);
  options.on_complete = [&](const service::JobSpec&, const service::JobResult& r) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    completions.push_back(r.name);
  };
  service::BatchExecutor executor(cache, options);

  executor.submit(ok_job("blocker"));
  ASSERT_TRUE(poll_until([&] { return executor.queue_depth() == 0; }));
  executor.submit(ok_job("q1"));
  executor.submit(ok_job("q2"));
  executor.submit(ok_job("q3"));

  EXPECT_EQ(executor.cancel_pending(), 3u);
  EXPECT_EQ(executor.queue_depth(), 0u);
  gate.open();

  const auto& results = executor.wait();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status, service::JobStatus::kOk);  // already running
  for (int j = 1; j <= 3; ++j) {
    EXPECT_EQ(results[j].status, service::JobStatus::kAborted);
    EXPECT_EQ(results[j].exit_code, 4);
    EXPECT_NE(results[j].error.find("cancelled"), std::string::npos);
  }
  EXPECT_EQ(executor.stats().cancelled, 3u);
  // Aborts flow through on_complete exactly like real completions.
  std::lock_guard<std::mutex> lock(seen_mutex);
  EXPECT_EQ(completions.size(), 4u);
}

TEST(BatchExecutorTest, WorkerCrashIsContainedAndTyped) {
  service::ModuleCache cache(8);
  service::BatchExecutor::Options options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.pre_execute_hook = [](const service::JobSpec& spec) {
    if (spec.name == "crash") throw Error("simulated worker crash");
  };
  service::BatchExecutor executor(cache, options);
  executor.submit(ok_job("crash"));
  executor.submit(ok_job("survivor"));

  const auto& results = executor.wait();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, service::JobStatus::kCrashed);
  EXPECT_EQ(results[0].exit_code, 11);
  EXPECT_NE(results[0].error.find("worker crashed"), std::string::npos);
  // The worker thread survived its job's crash and ran the next one.
  EXPECT_EQ(results[1].status, service::JobStatus::kOk);
  EXPECT_EQ(executor.stats().crashed, 1u);
}

TEST(BatchExecutorTest, WarmContextReuseKeepsResultsIdentical) {
  service::ModuleCache cache(8);
  service::ContextPool pool;
  service::BatchExecutor::Options options;
  options.workers = 1;  // sequential: job 2 must see job 1's parked context
  options.queue_capacity = 8;
  options.context_pool = &pool;
  service::BatchExecutor executor(cache, options);
  service::JobSpec first = ok_job("first");
  first.ir_text = kContendedProgram;
  service::JobSpec second = ok_job("second");
  second.ir_text = kContendedProgram;
  executor.submit(std::move(first));
  executor.submit(std::move(second));

  const auto& results = executor.wait();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, service::JobStatus::kOk);
  EXPECT_EQ(results[1].status, service::JobStatus::kOk);
  EXPECT_FALSE(results[0].context_reused);
  EXPECT_TRUE(results[1].context_reused);
  EXPECT_EQ(results[0].trace_fingerprint, results[1].trace_fingerprint);
  EXPECT_EQ(results[0].memory_fingerprint, results[1].memory_fingerprint);
  EXPECT_EQ(results[0].instructions, results[1].instructions);
  EXPECT_GE(pool.stats().reused, 1u);
}

TEST(BatchExecutorTest, ProfiledJobCarriesWaitAttribution) {
  service::ModuleCache cache(8);
  service::BatchExecutor executor(cache, {.workers = 1, .queue_capacity = 4});
  service::JobSpec spec = ok_job("profiled");
  spec.ir_text = kContendedProgram;
  spec.config.profile = true;
  executor.submit(std::move(spec));
  const auto& results = executor.wait();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, service::JobStatus::kOk);
  EXPECT_TRUE(results[0].profiled);
  std::uint64_t events = 0;
  for (std::size_t c = 0; c < runtime::kNumWaitCategories; ++c) {
    events += results[0].wait_events[c];
  }
  // Three contending workers cannot all proceed without waiting at least
  // once under the turn protocol.
  EXPECT_GT(events, 0u);
}

TEST(BatchExecutorTest, WaitIsIdempotent) {
  service::ModuleCache cache(8);
  service::BatchExecutor executor(cache, {.workers = 2, .queue_capacity = 4});
  executor.submit(ok_job("one"));
  const auto& first = executor.wait();
  const auto& second = executor.wait();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.size(), 1u);
}

}  // namespace
}  // namespace detlock
