// AdmissionController: token-bucket quota with exact retry hints, per-client
// and total backlog bounds, DRR fairness, drain rejection, and the
// requeue/flush/client-gone bookkeeping the server drain relies on.
// All time is injected -- no sleeps anywhere.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "service/admission.hpp"

namespace detlock {
namespace {

using service::AdmissionController;
using service::AdmissionOptions;
using service::AdmitStatus;
using service::AdmittedJob;
using Clock = AdmissionController::Clock;

service::JobSpec job(const std::string& name) {
  service::JobSpec spec;
  spec.name = name;
  spec.ir_text = "func @main(0) regs=4 {\nblock entry:\n  %0 = const 0\n  ret %0\n}\n";
  return spec;
}

TEST(AdmissionTest, TokenBucketRejectsWithExactRetryHint) {
  AdmissionOptions options;
  options.quota_rate = 2.0;  // 2 jobs/sec
  options.quota_burst = 2.0;
  AdmissionController admission(options);
  const Clock::time_point t0 = Clock::now();

  // The bucket starts full at burst: two admits, then an empty bucket.
  EXPECT_EQ(admission.offer(1, job("a"), t0).status, AdmitStatus::kAdmitted);
  EXPECT_EQ(admission.offer(1, job("b"), t0).status, AdmitStatus::kAdmitted);
  const service::AdmitResult rejected = admission.offer(1, job("c"), t0);
  EXPECT_EQ(rejected.status, AdmitStatus::kRetryQuota);
  // One whole token at 2 tokens/sec = 500ms, computed, not configured.
  EXPECT_EQ(rejected.retry_after_ms, 500u);

  // Waiting the suggested time really does yield a token.
  const Clock::time_point t1 = t0 + std::chrono::milliseconds(500);
  EXPECT_EQ(admission.offer(1, job("c"), t1).status, AdmitStatus::kAdmitted);
  EXPECT_EQ(admission.stats().quota_rejections, 1u);
}

TEST(AdmissionTest, QuotaIsPerClient) {
  AdmissionOptions options;
  options.quota_rate = 1.0;
  options.quota_burst = 1.0;
  AdmissionController admission(options);
  const Clock::time_point t0 = Clock::now();
  EXPECT_EQ(admission.offer(1, job("a"), t0).status, AdmitStatus::kAdmitted);
  EXPECT_EQ(admission.offer(1, job("b"), t0).status, AdmitStatus::kRetryQuota);
  // A different client has its own (full) bucket.
  EXPECT_EQ(admission.offer(2, job("c"), t0).status, AdmitStatus::kAdmitted);
}

TEST(AdmissionTest, BacklogCapIsPerClientSoFloodersOnlyStarveThemselves) {
  AdmissionOptions options;
  options.client_backlog_cap = 2;
  AdmissionController admission(options);
  const Clock::time_point t0 = Clock::now();
  EXPECT_EQ(admission.offer(1, job("f1"), t0).status, AdmitStatus::kAdmitted);
  EXPECT_EQ(admission.offer(1, job("f2"), t0).status, AdmitStatus::kAdmitted);
  const service::AdmitResult rejected = admission.offer(1, job("f3"), t0);
  EXPECT_EQ(rejected.status, AdmitStatus::kRetryBacklog);
  EXPECT_EQ(rejected.retry_after_ms, options.backlog_retry_ms);
  // The flooding client is full; a quiet client still gets in.
  EXPECT_EQ(admission.offer(2, job("q1"), t0).status, AdmitStatus::kAdmitted);
  EXPECT_EQ(admission.stats().backlog_rejections, 1u);
  EXPECT_EQ(admission.backlog(), 3u);
}

TEST(AdmissionTest, TotalBacklogCapBoundsEveryone) {
  AdmissionOptions options;
  options.client_backlog_cap = 100;
  options.total_backlog_cap = 2;
  AdmissionController admission(options);
  const Clock::time_point t0 = Clock::now();
  EXPECT_EQ(admission.offer(1, job("a"), t0).status, AdmitStatus::kAdmitted);
  EXPECT_EQ(admission.offer(2, job("b"), t0).status, AdmitStatus::kAdmitted);
  EXPECT_EQ(admission.offer(3, job("c"), t0).status, AdmitStatus::kRetryBacklog);
}

TEST(AdmissionTest, DeficitRoundRobinInterleavesClients) {
  AdmissionOptions options;
  options.drr_quantum = 2;
  AdmissionController admission(options);
  const Clock::time_point t0 = Clock::now();
  // Client 1 floods six jobs, client 2 parks two.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(admission.offer(1, job("a" + std::to_string(i)), t0).status,
              AdmitStatus::kAdmitted);
  }
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(admission.offer(2, job("b" + std::to_string(i)), t0).status,
              AdmitStatus::kAdmitted);
  }
  std::vector<std::string> order;
  while (const std::optional<AdmittedJob> next = admission.next()) {
    order.push_back(next->spec.name);
  }
  // Quantum 2: the flooder dispatches two, then the quiet client gets its
  // two, then the flooder finishes -- not six-then-two.
  const std::vector<std::string> expected = {"a0", "a1", "b0", "b1", "a2", "a3", "a4", "a5"};
  EXPECT_EQ(order, expected);
}

TEST(AdmissionTest, RequeueFrontPreservesDispatchOrder) {
  AdmissionController admission(AdmissionOptions{});
  const Clock::time_point t0 = Clock::now();
  admission.offer(1, job("first"), t0);
  admission.offer(1, job("second"), t0);
  std::optional<AdmittedJob> picked = admission.next();
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->spec.name, "first");
  // The dispatcher hit a full executor queue: put it back at the FRONT.
  admission.requeue_front(std::move(*picked));
  picked = admission.next();
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->spec.name, "first");  // not "second"
}

TEST(AdmissionTest, DrainingRejectsEverythingNew) {
  AdmissionController admission(AdmissionOptions{});
  const Clock::time_point t0 = Clock::now();
  EXPECT_EQ(admission.offer(1, job("before"), t0).status, AdmitStatus::kAdmitted);
  admission.start_draining();
  const service::AdmitResult rejected = admission.offer(1, job("after"), t0);
  EXPECT_EQ(rejected.status, AdmitStatus::kDraining);
  EXPECT_GT(rejected.retry_after_ms, 0u);
  // Already-parked work is still dispatchable (the drain grace period).
  EXPECT_TRUE(admission.next().has_value());
}

TEST(AdmissionTest, FlushBacklogReturnsEverythingInClientOrder) {
  AdmissionController admission(AdmissionOptions{});
  const Clock::time_point t0 = Clock::now();
  admission.offer(1, job("a0"), t0);
  admission.offer(2, job("b0"), t0);
  admission.offer(1, job("a1"), t0);
  const std::vector<AdmittedJob> flushed = admission.flush_backlog();
  ASSERT_EQ(flushed.size(), 3u);
  // Per-client submission order survives the flush (a client's ABORTED
  // frames arrive in the order it submitted).
  std::vector<std::string> client1;
  for (const AdmittedJob& j : flushed) {
    if (j.client == 1) client1.push_back(j.spec.name);
  }
  EXPECT_EQ(client1, (std::vector<std::string>{"a0", "a1"}));
  EXPECT_EQ(admission.backlog(), 0u);
  EXPECT_FALSE(admission.next().has_value());
}

TEST(AdmissionTest, ClientGoneDropsItsLaneOnly) {
  AdmissionController admission(AdmissionOptions{});
  const Clock::time_point t0 = Clock::now();
  admission.offer(1, job("dead0"), t0);
  admission.offer(1, job("dead1"), t0);
  admission.offer(2, job("alive"), t0);
  const std::vector<AdmittedJob> dropped = admission.client_gone(1);
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_EQ(admission.backlog(), 1u);
  // next() skips the vanished client's stale ring entry and dispatches the
  // survivor.
  const std::optional<AdmittedJob> next = admission.next();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->spec.name, "alive");
  EXPECT_FALSE(admission.next().has_value());
}

}  // namespace
}  // namespace detlock
