// ContextPool: the warm-context reuse contract.  A job on a reused
// (reset) context must be indistinguishable from the same job on a fresh
// one -- fingerprints, counts, schedules -- and the idle bounds must hold.
#include <gtest/gtest.h>

#include <memory>

#include "service/compiled_module.hpp"
#include "service/context_pool.hpp"
#include "service/execution_context.hpp"
#include "support/error.hpp"

namespace detlock {
namespace {

// Three workers contending on one lock: enough scheduling surface that any
// state leaking across reuse would disturb the trace fingerprint.
constexpr const char* kContendedProgram = R"(
func @worker(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 20
  br loop
block loop:
  %3 = icmp lt %1, %2
  condbr %3, body, done
block body:
  %4 = const 0
  lock %4
  %5 = const 100
  %6 = load %5
  %7 = add %6, %0
  store %5, %7
  unlock %4
  %8 = const 1
  %1 = add %1, %8
  br loop
block done:
  ret
}
func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = spawn @worker(%2)
  %4 = const 3
  %5 = call @worker(%4)
  join %1
  join %3
  %6 = const 100
  %7 = load %6
  ret %7
}
)";

api::RunConfig base_config() {
  api::RunConfig config;
  config.memory_words = 1 << 10;
  return config;
}

std::shared_ptr<const service::CompiledModule> compile_contended() {
  service::CompileOptions options;
  return service::CompiledModule::compile(kContendedProgram, options);
}

TEST(ContextPoolTest, ReusedContextMatchesFreshContextExactly) {
  const auto module = compile_contended();
  const api::RunConfig config = base_config();

  // Reference: a run on a context that has never been pooled.
  service::ExecutionContext fresh(module, config);
  const interp::RunResult reference = fresh.run("main");

  service::ContextPool pool;
  interp::RunResult warm_first;
  {
    service::ContextPool::Lease lease = pool.acquire(module, config);
    EXPECT_FALSE(lease.reused());
    // Dirty every per-job knob the reset contract must clear.
    lease->set_chaos_seed(12345);
    lease->set_memory_hint(1 << 8);
    warm_first = lease->run("main");
  }  // released -> parked
  {
    service::ContextPool::Lease lease = pool.acquire(module, config);
    EXPECT_TRUE(lease.reused());
    const interp::RunResult reused = lease->run("main");
    EXPECT_EQ(reused.trace_fingerprint, reference.trace_fingerprint);
    EXPECT_EQ(reused.memory_fingerprint, reference.memory_fingerprint);
    EXPECT_EQ(reused.instructions, reference.instructions);
    EXPECT_EQ(reused.lock_acquires, reference.lock_acquires);
    EXPECT_EQ(reused.main_return, reference.main_return);
    EXPECT_EQ(reused.final_clocks, reference.final_clocks);
    EXPECT_EQ(reused.per_thread_instructions, reference.per_thread_instructions);
  }
  EXPECT_EQ(warm_first.trace_fingerprint, reference.trace_fingerprint);
  EXPECT_EQ(pool.stats().created, 1u);
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(ContextPoolTest, ResetRejectsMismatchedCompileConfig) {
  const auto module = compile_contended();  // compiled kDetLock/decoded
  service::ExecutionContext ctx(module, base_config());
  api::RunConfig nondet = base_config();
  nondet.mode = api::Mode::kClocksOnly;
  EXPECT_THROW(ctx.reset(nondet), Error);
}

TEST(ContextPoolTest, IdleBoundsDropExcessContexts) {
  const auto module = compile_contended();
  service::ContextPool::Options options;
  options.max_idle_per_module = 2;
  options.max_idle_total = 2;
  service::ContextPool pool(options);

  {
    // Three concurrent leases; only two fit the idle bound on release.
    std::vector<service::ContextPool::Lease> leases;
    for (int i = 0; i < 3; ++i) leases.push_back(pool.acquire(module, base_config()));
    EXPECT_EQ(pool.stats().in_use, 3u);
  }
  const service::ContextPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.created, 3u);
  EXPECT_EQ(stats.idle, 2u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.in_use, 0u);
}

}  // namespace
}  // namespace detlock
