// Jobs-manifest grammar: happy-path key coverage, the error taxonomy (each
// with the offending line number in the message), and job-name uniqueness.
#include <gtest/gtest.h>

#include "service/manifest.hpp"

namespace detlock {
namespace {

std::optional<service::Manifest> parse(std::string_view text, std::string* error_out = nullptr) {
  std::string error;
  auto m = service::parse_manifest(text, error);
  if (error_out != nullptr) *error_out = error;
  return m;
}

TEST(ManifestTest, ParsesJobsWithCommentsAndBlankLines) {
  const auto m = parse(
      "# smoke manifest\n"
      "\n"
      "job hello programs/hello.dl runs=2 schedule=1\n"
      "  # indented comment\n"
      "job chaos programs/pc.dl chaos=1 chaos-trials=2 chaos-seed=11 mode=detlock\n"
      "job stall programs/abba.dl watchdog-ms=400 engine=reference\n");
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->jobs.size(), 3u);

  EXPECT_EQ(m->jobs[0].spec.name, "hello");
  EXPECT_EQ(m->jobs[0].program_path, "programs/hello.dl");
  EXPECT_EQ(m->jobs[0].spec.config.runs, 2);
  EXPECT_TRUE(m->jobs[0].spec.collect_schedule);
  EXPECT_TRUE(m->jobs[0].spec.ir_text.empty());  // caller loads the file

  EXPECT_TRUE(m->jobs[1].spec.config.chaos);
  EXPECT_EQ(m->jobs[1].spec.config.chaos_trials, 2);
  EXPECT_EQ(m->jobs[1].spec.config.chaos_seed, 11u);
  EXPECT_EQ(m->jobs[1].spec.config.mode, api::Mode::kDetLock);

  EXPECT_EQ(m->jobs[2].spec.config.watchdog_ms, 400u);
  EXPECT_EQ(m->jobs[2].spec.config.engine, interp::EngineKind::kReference);
}

TEST(ManifestTest, ParsesJitEngineAndInterpAlias) {
  const auto m = parse(
      "job native p.dl engine=jit runs=2\n"
      "job alias q.dl interp=jit\n"
      "job plain r.dl interp=decoded\n");
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->jobs.size(), 3u);
  EXPECT_EQ(m->jobs[0].spec.config.engine, interp::EngineKind::kJit);
  EXPECT_EQ(m->jobs[1].spec.config.engine, interp::EngineKind::kJit);
  EXPECT_EQ(m->jobs[2].spec.config.engine, interp::EngineKind::kDecoded);

  std::string error;
  EXPECT_FALSE(parse("job a a.dl engine=turbo\n", &error).has_value());
  EXPECT_NE(error.find("unknown engine 'turbo'"), std::string::npos);
  EXPECT_NE(error.find("decoded|reference|jit"), std::string::npos);
}

TEST(ManifestTest, ParsesEntryArgsAndPresets) {
  const auto m = parse(
      "job custom p.dl entry=bench args=3,-1,42 opt=o2 placement=end mode=kendo "
      "kendo-chunk=128 threads-max=8 memory-words=4096\n");
  ASSERT_TRUE(m.has_value());
  const service::JobSpec& spec = m->jobs[0].spec;
  EXPECT_EQ(spec.entry, "bench");
  EXPECT_EQ(spec.args, (std::vector<std::int64_t>{3, -1, 42}));
  EXPECT_TRUE(spec.config.pass_options.opt2_conditional);
  EXPECT_FALSE(spec.config.pass_options.opt1_function_clocking);
  EXPECT_EQ(spec.config.pass_options.placement, pass::ClockPlacement::kEnd);
  EXPECT_EQ(spec.config.mode, api::Mode::kKendoSim);
  EXPECT_EQ(spec.config.kendo_chunk_size, 128u);
  EXPECT_EQ(spec.config.threads_max, 8u);
  EXPECT_EQ(spec.config.memory_words, 4096u);
}

TEST(ManifestTest, ErrorsNameTheLine) {
  std::string error;

  EXPECT_FALSE(parse("job a a.dl\nfrob b b.dl\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("expected 'job'"), std::string::npos);

  EXPECT_FALSE(parse("job only_name\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);

  EXPECT_FALSE(parse("job a a.dl\njob b b.dl runs\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("key=value"), std::string::npos);

  EXPECT_FALSE(parse("job a a.dl frobnicate=1\n", &error).has_value());
  EXPECT_NE(error.find("unknown option 'frobnicate'"), std::string::npos);

  EXPECT_FALSE(parse("job a a.dl mode=warp\n", &error).has_value());
  EXPECT_NE(error.find("unknown mode 'warp'"), std::string::npos);

  EXPECT_FALSE(parse("job a a.dl runs=ten\n", &error).has_value());
  EXPECT_NE(error.find("bad value 'ten'"), std::string::npos);

  EXPECT_FALSE(parse("job a a.dl chaos=maybe\n", &error).has_value());
  EXPECT_NE(error.find("bad boolean"), std::string::npos);

  EXPECT_FALSE(parse("job a a.dl args=1,x\n", &error).has_value());
  EXPECT_NE(error.find("bad integer in args list"), std::string::npos);
}

TEST(ManifestTest, RejectsDuplicateNames) {
  std::string error;
  EXPECT_FALSE(parse("job a a.dl\njob a b.dl\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("duplicate job name 'a'"), std::string::npos);
}

TEST(ManifestTest, ValidatesEachJobConfigAtParseTime) {
  std::string error;
  EXPECT_FALSE(parse("job a a.dl\njob b b.dl runs=0\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ManifestTest, EmptyManifestIsAnError) {
  std::string error;
  EXPECT_FALSE(parse("# nothing but comments\n\n", &error).has_value());
  EXPECT_NE(error.find("no jobs"), std::string::npos);
}

}  // namespace
}  // namespace detlock
