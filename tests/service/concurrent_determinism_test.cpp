// The acceptance property of the whole service layer: one CompiledModule
// executed from K OS threads, R runs each, produces results byte-identical
// to a serial reference run -- fingerprints, counts, and the serialized
// lock-acquisition schedule -- including when every concurrent run has its
// own timing-chaos plan.  Concurrent engines sharing the artifact must not
// be able to observe each other.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "runtime/schedule.hpp"
#include "service/compiled_module.hpp"
#include "service/execution_context.hpp"

namespace detlock {
namespace {

// share/programs/hello_locks.dl inlined: three guest threads, 60+ contended
// acquisitions, a last-writer cell -- the schedule-sensitive shape.
constexpr const char* kContendedProgram = R"(
func @worker(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 20
  br loop
block loop:
  %3 = icmp lt %1, %2
  condbr %3, body, done
block body:
  %4 = const 0
  lock %4
  %5 = const 100
  %6 = load %5
  %7 = add %6, %0
  store %5, %7
  %8 = const 101
  store %8, %0
  unlock %4
  %9 = const 1
  %1 = add %1, %9
  br loop
block done:
  ret
}
func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = spawn @worker(%2)
  %4 = const 3
  %5 = call @worker(%4)
  join %1
  join %3
  %6 = const 101
  %7 = load %6
  ret %7
}
)";

struct RunSnapshot {
  std::int64_t main_return = 0;
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t memory_fingerprint = 0;
  std::uint64_t instructions = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t threads = 0;
  std::string schedule;

  bool operator==(const RunSnapshot&) const = default;
};

api::RunConfig snapshot_config() {
  api::RunConfig config;  // kDetLock, decoded engine
  config.memory_words = 1 << 12;
  config.keep_trace_events = true;  // so the schedule can be serialized
  return config;
}

RunSnapshot snapshot_run(const std::shared_ptr<const service::CompiledModule>& module,
                         bool chaos, std::uint64_t chaos_seed) {
  api::RunConfig config = snapshot_config();
  config.chaos = chaos;
  config.chaos_seed = chaos_seed;
  service::ExecutionContext ctx(module, config);
  const interp::RunResult rr = ctx.run("main");
  RunSnapshot snap;
  snap.main_return = rr.main_return;
  snap.trace_fingerprint = rr.trace_fingerprint;
  snap.memory_fingerprint = rr.memory_fingerprint;
  snap.instructions = rr.instructions;
  snap.lock_acquires = rr.lock_acquires;
  snap.threads = rr.threads;
  snap.schedule = runtime::serialize_schedule(ctx.engine()->backend().trace().events());
  return snap;
}

class ConcurrentDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    module_ = service::CompiledModule::compile(kContendedProgram,
                                               service::compile_options(snapshot_config()));
    reference_ = snapshot_run(module_, /*chaos=*/false, /*chaos_seed=*/0);
    ASSERT_GT(reference_.lock_acquires, 0u);
    ASSERT_FALSE(reference_.schedule.empty());
  }

  /// K threads x R runs over the shared artifact; every snapshot must be
  /// byte-identical to the serial reference.
  void run_concurrently(bool chaos) {
    constexpr int kThreads = 4;
    constexpr int kRunsPerThread = 3;
    std::vector<std::vector<RunSnapshot>> snaps(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int r = 0; r < kRunsPerThread; ++r) {
          // Distinct chaos plan per (thread, run): determinism must hold
          // across plans, not just for one lucky seed.
          snaps[t].push_back(
              snapshot_run(module_, chaos, static_cast<std::uint64_t>(t * 101 + r)));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (int t = 0; t < kThreads; ++t) {
      for (int r = 0; r < kRunsPerThread; ++r) {
        SCOPED_TRACE("thread " + std::to_string(t) + " run " + std::to_string(r));
        EXPECT_EQ(snaps[t][r], reference_);
      }
    }
  }

  std::shared_ptr<const service::CompiledModule> module_;
  RunSnapshot reference_;
};

TEST_F(ConcurrentDeterminismTest, SharedModuleIsByteIdenticalAcrossThreads) {
  run_concurrently(/*chaos=*/false);
}

TEST_F(ConcurrentDeterminismTest, HoldsUnderPerRunTimingChaos) {
  run_concurrently(/*chaos=*/true);
}

TEST_F(ConcurrentDeterminismTest, SerialRerunsMatchToo) {
  // Baseline sanity for the comparison itself: repeated serial runs equal
  // the reference (if this fails, the concurrent variants are meaningless).
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(snapshot_run(module_, /*chaos=*/false, 0), reference_);
  }
}

}  // namespace
}  // namespace detlock
