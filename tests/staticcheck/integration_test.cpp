// Whole-corpus lint integration: every workload generator and every clean
// share/programs module must produce zero diagnostics, and the two
// deliberately broken fixtures must each produce at least one error with a
// witness.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "ir/parser.hpp"
#include "staticcheck/checker.hpp"
#include "workloads/workloads.hpp"

#ifndef DETLOCK_SOURCE_DIR
#define DETLOCK_SOURCE_DIR "."
#endif

namespace detlock::staticcheck {
namespace {

ir::Module parse_program(const std::string& relative) {
  const std::string path = std::string(DETLOCK_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ir::parse_module(ss.str());
}

std::string render(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) out += d.to_string() + "\n";
  return out;
}

TEST(LintCorpus, AllWorkloadsLintClean) {
  workloads::WorkloadParams params;
  params.threads = 4;
  params.scale = 1;
  for (const workloads::WorkloadSpec& spec : workloads::all_workloads()) {
    workloads::Workload w = spec.factory(params);
    CheckOptions check;
    check.entry = w.module.function(w.main_func).name();
    const std::vector<Diagnostic> diags = run_all_checks(w.module, check);
    EXPECT_EQ(error_count(diags), 0u) << spec.name << ":\n" << render(diags);
  }
}

TEST(LintCorpus, TaskfarmCvLintsClean) {
  workloads::WorkloadParams params;
  params.threads = 4;
  workloads::Workload w = workloads::make_taskfarm_cv(params);
  CheckOptions check;
  check.entry = w.module.function(w.main_func).name();
  const std::vector<Diagnostic> diags = run_all_checks(w.module, check);
  EXPECT_EQ(error_count(diags), 0u) << render(diags);
}

TEST(LintCorpus, CleanSharePrograms) {
  for (const char* program :
       {"share/programs/hello_locks.dl", "share/programs/producer_consumer.dl",
        "share/programs/bounded_queue_cv.dl", "share/programs/stencil_barrier.dl"}) {
    const ir::Module module = parse_program(program);
    const std::vector<Diagnostic> diags = run_all_checks(module, CheckOptions{});
    EXPECT_EQ(error_count(diags), 0u) << program << ":\n" << render(diags);
  }
}

TEST(LintCorpus, RacyCounterFixtureIsFlagged) {
  const ir::Module module = parse_program("share/programs/racy_counter.dl");
  const std::vector<Diagnostic> diags = run_all_checks(module, CheckOptions{});
  ASSERT_GE(error_count(diags), 1u);
  EXPECT_EQ(diags[0].checker, "lockset-race");
  EXPECT_FALSE(diags[0].witness.empty());
}

TEST(LintCorpus, AbbaDeadlockFixtureIsFlagged) {
  const ir::Module module = parse_program("share/programs/abba_deadlock.dl");
  const std::vector<Diagnostic> diags = run_all_checks(module, CheckOptions{});
  ASSERT_GE(error_count(diags), 1u);
  EXPECT_EQ(diags[0].checker, "deadlock");
  EXPECT_FALSE(diags[0].witness.empty());
}

TEST(LintCorpus, WorkloadsLintCleanUnderEveryOptRow) {
  // The conservation stage of run_all_checks instruments with the given
  // options; every Table I row must stay clean.
  workloads::WorkloadParams params;
  params.threads = 2;
  for (const workloads::WorkloadSpec& spec : workloads::all_workloads()) {
    for (const pass::PassOptions& options :
         {pass::PassOptions::none(), pass::PassOptions::only_opt1(),
          pass::PassOptions::only_opt2(), pass::PassOptions::only_opt3(),
          pass::PassOptions::only_opt4(), pass::PassOptions::all()}) {
      workloads::Workload w = spec.factory(params);
      CheckOptions check;
      check.entry = w.module.function(w.main_func).name();
      check.pass_options = options;
      const std::vector<Diagnostic> diags = run_all_checks(w.module, check);
      EXPECT_EQ(error_count(diags), 0u) << spec.name << ":\n" << render(diags);
    }
  }
}

}  // namespace
}  // namespace detlock::staticcheck
