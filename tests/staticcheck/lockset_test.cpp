// Unit tests for the static lockset / sync analysis core.
#include "staticcheck/lockset.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace detlock::staticcheck {
namespace {

/// State right before instruction `index` of `block` (must be reachable).
SyncState state_at(const SyncAnalysis& analysis, FuncId f, BlockId block, std::size_t index) {
  SyncState result;
  bool found = false;
  analysis.walk_block(f, block, [&](std::size_t i, const SyncState& state) {
    if (i == index) {
      result = state;
      found = true;
    }
  });
  EXPECT_TRUE(found) << "unreachable block or bad index";
  return result;
}

TEST(Lockset, MustHeldBetweenLockAndUnlock) {
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg mu = b.const_i(7);
  b.lock(mu);
  const ir::Reg addr = b.const_i(100);
  const ir::Reg v = b.load(addr);
  b.store(addr, v);
  b.unlock(mu);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, 0);
  const LockRef lock{LockRef::Kind::kConst, 7};
  // Before the load (index 3): held.
  EXPECT_TRUE(lockset_contains(state_at(analysis, 0, 0, 3).must, lock));
  // Before the lock (index 1): not held.
  EXPECT_FALSE(lockset_contains(state_at(analysis, 0, 0, 1).may, lock));
  // After the unlock, before ret (index 6): released again.
  EXPECT_FALSE(lockset_contains(state_at(analysis, 0, 0, 6).may, lock));
}

TEST(Lockset, BranchMergeIntersectsMustAndUnionsMay) {
  // One arm locks, the other does not: at the join the lock is may-held but
  // not must-held.
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 1);
  const BlockId then_bb = b.make_block("then");
  const BlockId else_bb = b.make_block("else");
  const BlockId merge_bb = b.make_block("merge");
  b.condbr(b.param(0), then_bb, else_bb);
  b.set_insert_point(then_bb);
  const ir::Reg mu = b.const_i(1);
  b.lock(mu);
  b.br(merge_bb);
  b.set_insert_point(else_bb);
  b.br(merge_bb);
  b.set_insert_point(merge_bb);
  const ir::Reg addr = b.const_i(100);
  b.store(addr, b.param(0));
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, 0);
  const LockRef lock{LockRef::Kind::kConst, 1};
  const SyncState merge_state = state_at(analysis, 0, merge_bb, 0);
  EXPECT_FALSE(lockset_contains(merge_state.must, lock));
  EXPECT_TRUE(lockset_contains(merge_state.may, lock));
}

TEST(Lockset, LoopCarriedLocksetSurvivesBackEdge) {
  // Lock acquired before the loop stays must-held inside it across
  // iterations.
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  const BlockId loop_bb = b.make_block("loop");
  const BlockId body_bb = b.make_block("body");
  const BlockId done_bb = b.make_block("done");
  const ir::Reg mu = b.const_i(3);
  b.lock(mu);
  const ir::Reg i = b.const_i(0);
  const ir::Reg n = b.const_i(10);
  const ir::Reg one = b.const_i(1);
  b.br(loop_bb);
  b.set_insert_point(loop_bb);
  const ir::Reg c = b.icmp(ir::CmpPred::kLt, i, n);
  b.condbr(c, body_bb, done_bb);
  b.set_insert_point(body_bb);
  const ir::Reg addr = b.const_i(100);
  b.store(addr, i);
  b.emit(ir::Instr::make_binary(ir::Opcode::kAdd, i, i, one));
  b.br(loop_bb);
  b.set_insert_point(done_bb);
  b.unlock(mu);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, 0);
  const LockRef lock{LockRef::Kind::kConst, 3};
  EXPECT_TRUE(lockset_contains(state_at(analysis, 0, body_bb, 0).must, lock));
  EXPECT_TRUE(lockset_contains(state_at(analysis, 0, loop_bb, 0).must, lock));
}

TEST(Lockset, ParamLockResolvedThroughSummary) {
  // helper(mu) locks its parameter; the caller's lockset gains the call
  // site's constant after the call.
  ir::Module m;
  ir::FunctionBuilder helper(m, "helper", 1);
  helper.lock(helper.param(0));
  helper.ret();

  ir::FunctionBuilder main_fn(m, "main", 0);
  const ir::Reg mu = main_fn.const_i(9);
  main_fn.call(helper.func_id(), {mu});
  const ir::Reg addr = main_fn.const_i(100);
  main_fn.store(addr, mu);
  main_fn.unlock(mu);
  main_fn.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, main_fn.func_id());
  // helper's summary acquires its parameter #0.
  const LockSummary& summary = analysis.func(helper.func_id()).summary;
  ASSERT_EQ(summary.acquired.size(), 1u);
  EXPECT_EQ(summary.acquired[0].kind, LockRef::Kind::kParam);
  EXPECT_EQ(summary.acquired[0].id, 0);
  // After the call (store at index 3) mutex 9 is must-held in main.
  const LockRef lock{LockRef::Kind::kConst, 9};
  EXPECT_TRUE(lockset_contains(state_at(analysis, main_fn.func_id(), 0, 3).must, lock));
}

TEST(Lockset, CalleeInheritsCallerContext) {
  // main locks 5 around every call of leaf(): leaf's accesses see mutex 5
  // must-held via its context.
  ir::Module m;
  ir::FunctionBuilder leaf(m, "leaf", 0);
  const ir::Reg addr = leaf.const_i(100);
  const ir::Reg v = leaf.load(addr);
  leaf.store(addr, v);
  leaf.ret();

  ir::FunctionBuilder main_fn(m, "main", 0);
  const ir::Reg mu = main_fn.const_i(5);
  main_fn.lock(mu);
  main_fn.call(leaf.func_id(), {});
  main_fn.unlock(mu);
  main_fn.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, main_fn.func_id());
  const LockRef lock{LockRef::Kind::kConst, 5};
  EXPECT_TRUE(lockset_contains(analysis.func(leaf.func_id()).context_must, lock));
  EXPECT_TRUE(lockset_contains(state_at(analysis, leaf.func_id(), 0, 1).must, lock));
}

TEST(Lockset, SpawnTargetGetsEmptyContext) {
  // Even when the spawner holds a lock at the spawn site, the child thread
  // starts with nothing held.
  ir::Module m;
  ir::FunctionBuilder worker(m, "worker", 1);
  worker.ret();

  ir::FunctionBuilder main_fn(m, "main", 0);
  const ir::Reg mu = main_fn.const_i(2);
  main_fn.lock(mu);
  const ir::Reg arg = main_fn.const_i(0);
  const ir::Reg h = main_fn.spawn(worker.func_id(), {arg});
  main_fn.unlock(mu);
  main_fn.join(h);
  main_fn.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, main_fn.func_id());
  EXPECT_TRUE(analysis.func(worker.func_id()).context_must.empty());
}

TEST(Lockset, EntryLiveWindowTracksSpawnsAndJoins) {
  ir::Module m;
  ir::FunctionBuilder worker(m, "worker", 1);
  worker.ret();

  ir::FunctionBuilder main_fn(m, "main", 0);
  const ir::Reg arg = main_fn.const_i(0);
  const ir::Reg addr = main_fn.const_i(100);
  main_fn.store(addr, arg);                            // index 2: before spawn
  const ir::Reg h = main_fn.spawn(worker.func_id(), {arg});
  main_fn.store(addr, arg);                            // index 4: child live
  main_fn.join(h);
  main_fn.store(addr, arg);                            // index 6: child joined
  main_fn.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, main_fn.func_id());
  EXPECT_FALSE(analysis.entry_concurrent_at(0, 2));
  EXPECT_TRUE(analysis.entry_concurrent_at(0, 4));
  EXPECT_FALSE(analysis.entry_concurrent_at(0, 6));
}

TEST(Lockset, WitnessPathReachesNestedBlock) {
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 1);
  const BlockId mid = b.make_block("mid");
  const BlockId tail = b.make_block("tail");
  b.br(mid);
  b.set_insert_point(mid);
  b.br(tail);
  b.set_insert_point(tail);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, 0);
  const std::vector<std::string> path = analysis.witness_path(0, tail);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), "entry");
  EXPECT_EQ(path.back(), "tail");
}

}  // namespace
}  // namespace detlock::staticcheck
