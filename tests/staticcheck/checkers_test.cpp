// Unit tests for the race, deadlock and sync-misuse checkers over
// hand-built modules (one clean and one violating variant per checker).
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "staticcheck/deadlock.hpp"
#include "staticcheck/lockset.hpp"
#include "staticcheck/misuse.hpp"
#include "staticcheck/races.hpp"

namespace detlock::staticcheck {
namespace {

/// Worker that loads/increments/stores address 100, locking mutex 0 around
/// the access when `locked`.
ir::FuncId build_counter_worker(ir::Module& m, bool locked) {
  ir::FunctionBuilder b(m, locked ? "locked_worker" : "racy_worker", 1);
  const ir::Reg addr = b.const_i(100);
  ir::Reg mu = 0;
  if (locked) {
    mu = b.const_i(0);
    b.lock(mu);
  }
  const ir::Reg v = b.load(addr);
  const ir::Reg one = b.const_i(1);
  b.store(addr, b.add(v, one));
  if (locked) b.unlock(mu);
  b.ret();
  return b.func_id();
}

ir::FuncId build_spawning_main(ir::Module& m, ir::FuncId worker) {
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg a0 = b.const_i(1);
  const ir::Reg h0 = b.spawn(worker, {a0});
  const ir::Reg a1 = b.const_i(2);
  const ir::Reg h1 = b.spawn(worker, {a1});
  b.join(h0);
  b.join(h1);
  b.ret();
  return b.func_id();
}

std::size_t count_checker(const std::vector<Diagnostic>& diags, std::string_view checker,
                          Severity severity) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.checker == checker && d.severity == severity) ++n;
  }
  return n;
}

TEST(Races, UnlockedSharedCounterIsFlagged) {
  ir::Module m;
  const ir::FuncId worker = build_counter_worker(m, /*locked=*/false);
  const ir::FuncId main_fn = build_spawning_main(m, worker);
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, main_fn);
  std::vector<Diagnostic> diags;
  check_races(analysis, diags);
  ASSERT_EQ(count_checker(diags, "lockset-race", Severity::kError), 1u);
  EXPECT_FALSE(diags[0].witness.empty());
}

TEST(Races, LockedSharedCounterIsClean) {
  ir::Module m;
  const ir::FuncId worker = build_counter_worker(m, /*locked=*/true);
  const ir::FuncId main_fn = build_spawning_main(m, worker);
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, main_fn);
  std::vector<Diagnostic> diags;
  check_races(analysis, diags);
  EXPECT_EQ(diags.size(), 0u);
}

TEST(Races, SequentialAccessesAreNotConcurrent) {
  // main touches the cell before the spawn and after the join: never in
  // parallel with the single worker.
  ir::Module m;
  ir::FunctionBuilder worker(m, "worker", 1);
  const ir::Reg waddr = worker.const_i(100);
  worker.store(waddr, worker.param(0));
  worker.ret();

  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg addr = b.const_i(100);
  const ir::Reg zero = b.const_i(0);
  b.store(addr, zero);
  const ir::Reg h = b.spawn(worker.func_id(), {zero});
  b.join(h);
  const ir::Reg v = b.load(addr);
  b.ret(v);
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, b.func_id());
  std::vector<Diagnostic> diags;
  check_races(analysis, diags);
  EXPECT_EQ(diags.size(), 0u);
}

TEST(Races, InterproceduralLockIsRespected) {
  // The worker's access is guarded by a lock taken in a helper: the
  // summary-based lockset must suppress the report.
  ir::Module m;
  ir::FunctionBuilder acquire(m, "acquire", 0);
  const ir::Reg amu = acquire.const_i(0);
  acquire.lock(amu);
  acquire.ret();

  ir::FunctionBuilder worker(m, "worker", 1);
  worker.call(acquire.func_id(), {});
  const ir::Reg addr = worker.const_i(100);
  worker.store(addr, worker.param(0));
  const ir::Reg mu = worker.const_i(0);
  worker.unlock(mu);
  worker.ret();

  const ir::FuncId main_fn = build_spawning_main(m, worker.func_id());
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, main_fn);
  std::vector<Diagnostic> diags;
  check_races(analysis, diags);
  EXPECT_EQ(count_checker(diags, "lockset-race", Severity::kError), 0u);
}

TEST(Deadlock, AbbaCycleIsFlaggedOnce) {
  ir::Module m;
  ir::FunctionBuilder ab(m, "ab", 1);
  {
    const ir::Reg m0 = ab.const_i(0);
    const ir::Reg m1 = ab.const_i(1);
    ab.lock(m0);
    ab.lock(m1);
    ab.unlock(m1);
    ab.unlock(m0);
    ab.ret();
  }
  ir::FunctionBuilder ba(m, "ba", 1);
  {
    const ir::Reg m0 = ba.const_i(0);
    const ir::Reg m1 = ba.const_i(1);
    ba.lock(m1);
    ba.lock(m0);
    ba.unlock(m0);
    ba.unlock(m1);
    ba.ret();
  }
  ir::FunctionBuilder main_fn(m, "main", 0);
  const ir::Reg a0 = main_fn.const_i(1);
  const ir::Reg h0 = main_fn.spawn(ab.func_id(), {a0});
  const ir::Reg h1 = main_fn.spawn(ba.func_id(), {a0});
  main_fn.join(h0);
  main_fn.join(h1);
  main_fn.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, main_fn.func_id());
  std::vector<Diagnostic> diags;
  check_deadlocks(analysis, diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].witness.size(), 2u);  // one acquisition site per edge
}

TEST(Deadlock, ConsistentOrderIsClean) {
  // Both workers acquire 0 then 1: no cycle.
  ir::Module m;
  for (const char* name : {"w1", "w2"}) {
    ir::FunctionBuilder w(m, name, 1);
    const ir::Reg m0 = w.const_i(0);
    const ir::Reg m1 = w.const_i(1);
    w.lock(m0);
    w.lock(m1);
    w.unlock(m1);
    w.unlock(m0);
    w.ret();
  }
  ir::FunctionBuilder main_fn(m, "main", 0);
  const ir::Reg a0 = main_fn.const_i(1);
  const ir::Reg h0 = main_fn.spawn(0, {a0});
  const ir::Reg h1 = main_fn.spawn(1, {a0});
  main_fn.join(h0);
  main_fn.join(h1);
  main_fn.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, main_fn.func_id());
  std::vector<Diagnostic> diags;
  check_deadlocks(analysis, diags);
  EXPECT_EQ(diags.size(), 0u);
}

TEST(Deadlock, CycleWithoutSpawnIsOnlyWarning) {
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg m0 = b.const_i(0);
  const ir::Reg m1 = b.const_i(1);
  b.lock(m0);
  b.lock(m1);
  b.unlock(m1);
  b.unlock(m0);
  b.lock(m1);
  b.lock(m0);
  b.unlock(m0);
  b.unlock(m1);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, 0);
  std::vector<Diagnostic> diags;
  check_deadlocks(analysis, diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(Misuse, DoubleLockIsError) {
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg mu = b.const_i(4);
  b.lock(mu);
  b.lock(mu);
  b.unlock(mu);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, 0);
  std::vector<Diagnostic> diags;
  check_misuse(analysis, diags);
  EXPECT_EQ(count_checker(diags, "sync-misuse", Severity::kError), 1u);
}

TEST(Misuse, UnlockOfUnheldIsError) {
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg mu = b.const_i(4);
  b.unlock(mu);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, 0);
  std::vector<Diagnostic> diags;
  check_misuse(analysis, diags);
  EXPECT_EQ(count_checker(diags, "sync-misuse", Severity::kError), 1u);
}

TEST(Misuse, PartiallyHeldUnlockIsWarning) {
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 1);
  const BlockId then_bb = b.make_block("then");
  const BlockId merge_bb = b.make_block("merge");
  b.condbr(b.param(0), then_bb, merge_bb);
  b.set_insert_point(then_bb);
  const ir::Reg mu = b.const_i(4);
  b.lock(mu);
  b.br(merge_bb);
  b.set_insert_point(merge_bb);
  const ir::Reg mu2 = b.const_i(4);
  b.unlock(mu2);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, 0);
  std::vector<Diagnostic> diags;
  check_misuse(analysis, diags);
  EXPECT_EQ(count_checker(diags, "sync-misuse", Severity::kError), 0u);
  EXPECT_EQ(count_checker(diags, "sync-misuse", Severity::kWarning), 1u);
}

TEST(Misuse, CondWaitWithoutMutexIsError) {
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg cv = b.const_i(1);
  const ir::Reg mu = b.const_i(2);
  b.cond_wait(cv, mu);  // mutex 2 never locked
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, 0);
  std::vector<Diagnostic> diags;
  check_misuse(analysis, diags);
  EXPECT_GE(count_checker(diags, "sync-misuse", Severity::kError), 1u);
}

TEST(Misuse, SignalWithoutBoundMutexIsError) {
  ir::Module m;
  // waiter binds condvar 1 to mutex 2.
  ir::FunctionBuilder waiter(m, "waiter", 1);
  {
    const ir::Reg cv = waiter.const_i(1);
    const ir::Reg mu = waiter.const_i(2);
    waiter.lock(mu);
    waiter.cond_wait(cv, mu);
    waiter.unlock(mu);
    waiter.ret();
  }
  // signaler signals without holding mutex 2.
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg cv = b.const_i(1);
  b.cond_signal(cv);
  const ir::Reg a0 = b.const_i(0);
  const ir::Reg h = b.spawn(waiter.func_id(), {a0});
  b.join(h);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, b.func_id());
  std::vector<Diagnostic> diags;
  check_misuse(analysis, diags);
  EXPECT_GE(count_checker(diags, "sync-misuse", Severity::kError), 1u);
}

TEST(Misuse, WellFormedCondvarUseIsClean) {
  ir::Module m;
  ir::FunctionBuilder waiter(m, "waiter", 1);
  {
    const ir::Reg cv = waiter.const_i(1);
    const ir::Reg mu = waiter.const_i(2);
    waiter.lock(mu);
    waiter.cond_wait(cv, mu);
    waiter.unlock(mu);
    waiter.ret();
  }
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg a0 = b.const_i(0);
  const ir::Reg h = b.spawn(waiter.func_id(), {a0});
  const ir::Reg cv = b.const_i(1);
  const ir::Reg mu = b.const_i(2);
  b.lock(mu);
  b.cond_signal(cv);
  b.unlock(mu);
  b.join(h);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, b.func_id());
  std::vector<Diagnostic> diags;
  check_misuse(analysis, diags);
  EXPECT_EQ(count_checker(diags, "sync-misuse", Severity::kError), 0u);
  EXPECT_EQ(count_checker(diags, "sync-misuse", Severity::kWarning), 0u);
}

TEST(Misuse, DoubleJoinIsError) {
  ir::Module m;
  ir::FunctionBuilder worker(m, "worker", 1);
  worker.ret();
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg a0 = b.const_i(0);
  const ir::Reg h = b.spawn(worker.func_id(), {a0});
  b.join(h);
  b.join(h);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, b.func_id());
  std::vector<Diagnostic> diags;
  check_misuse(analysis, diags);
  EXPECT_EQ(count_checker(diags, "sync-misuse", Severity::kError), 1u);
}

TEST(Misuse, JoinInLoopWithoutRespawnIsError) {
  ir::Module m;
  ir::FunctionBuilder worker(m, "worker", 1);
  worker.ret();
  ir::FunctionBuilder b(m, "main", 0);
  const BlockId loop_bb = b.make_block("loop");
  const BlockId body_bb = b.make_block("body");
  const BlockId done_bb = b.make_block("done");
  const ir::Reg a0 = b.const_i(0);
  const ir::Reg h = b.spawn(worker.func_id(), {a0});
  const ir::Reg i = b.const_i(0);
  const ir::Reg n = b.const_i(3);
  const ir::Reg one = b.const_i(1);
  b.br(loop_bb);
  b.set_insert_point(loop_bb);
  const ir::Reg c = b.icmp(ir::CmpPred::kLt, i, n);
  b.condbr(c, body_bb, done_bb);
  b.set_insert_point(body_bb);
  b.join(h);  // joins the same handle every iteration
  b.emit(ir::Instr::make_binary(ir::Opcode::kAdd, i, i, one));
  b.br(loop_bb);
  b.set_insert_point(done_bb);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, b.func_id());
  std::vector<Diagnostic> diags;
  check_misuse(analysis, diags);
  EXPECT_GE(count_checker(diags, "sync-misuse", Severity::kError), 1u);
}

TEST(Misuse, SpawnJoinPerIterationIsClean) {
  ir::Module m;
  ir::FunctionBuilder worker(m, "worker", 1);
  worker.ret();
  ir::FunctionBuilder b(m, "main", 0);
  const BlockId loop_bb = b.make_block("loop");
  const BlockId body_bb = b.make_block("body");
  const BlockId done_bb = b.make_block("done");
  const ir::Reg i = b.const_i(0);
  const ir::Reg n = b.const_i(3);
  const ir::Reg one = b.const_i(1);
  b.br(loop_bb);
  b.set_insert_point(loop_bb);
  const ir::Reg c = b.icmp(ir::CmpPred::kLt, i, n);
  b.condbr(c, body_bb, done_bb);
  b.set_insert_point(body_bb);
  const ir::Reg h = b.spawn(worker.func_id(), {i});  // fresh handle per iteration
  b.join(h);
  b.emit(ir::Instr::make_binary(ir::Opcode::kAdd, i, i, one));
  b.br(loop_bb);
  b.set_insert_point(done_bb);
  b.ret();
  ir::verify_module_or_throw(m);

  const SyncAnalysis analysis(m, b.func_id());
  std::vector<Diagnostic> diags;
  check_misuse(analysis, diags);
  EXPECT_EQ(count_checker(diags, "sync-misuse", Severity::kError), 0u);
}

}  // namespace
}  // namespace detlock::staticcheck
