// Static clock-conservation checker: every workload under every Table I
// optimization row must pass, and deliberately corrupted instrumentation
// must fail.
#include "staticcheck/conservation.hpp"

#include <gtest/gtest.h>

#include "ir/verifier.hpp"
#include "pass/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace detlock::staticcheck {
namespace {

std::vector<std::pair<const char*, pass::PassOptions>> table1_rows() {
  return {{"none", pass::PassOptions::none()},   {"opt1", pass::PassOptions::only_opt1()},
          {"opt2", pass::PassOptions::only_opt2()}, {"opt3", pass::PassOptions::only_opt3()},
          {"opt4", pass::PassOptions::only_opt4()}, {"all", pass::PassOptions::all()}};
}

TEST(Conservation, AllWorkloadsPassEveryOptimizationRow) {
  workloads::WorkloadParams params;
  params.threads = 2;
  params.scale = 1;
  for (const workloads::WorkloadSpec& spec : workloads::all_workloads()) {
    for (const auto& [row, options] : table1_rows()) {
      workloads::Workload w = spec.factory(params);
      pass::ClockAssignment assignment;
      pass::instrument_module(w.module, options, assignment);
      std::vector<Diagnostic> diags;
      check_clock_conservation(w.module, assignment, options, diags);
      EXPECT_EQ(diags.size(), 0u) << spec.name << " x " << row
                                  << (diags.empty() ? "" : ": " + diags[0].to_string());
    }
  }
}

TEST(Conservation, PreciseConfigurationsAreExact) {
  // none and Opt1-only must conserve clocks with zero slack on every path.
  workloads::WorkloadParams params;
  params.threads = 2;
  for (const workloads::WorkloadSpec& spec : workloads::all_workloads()) {
    for (const pass::PassOptions& options :
         {pass::PassOptions::none(), pass::PassOptions::only_opt1()}) {
      const ConservationTolerance tol = tolerance_for(options);
      EXPECT_EQ(tol.relative_slack, 0.0);
      EXPECT_EQ(tol.absolute_slack, 0);
      workloads::Workload w = spec.factory(params);
      pass::ClockAssignment assignment;
      pass::instrument_module(w.module, options, assignment);
      std::vector<Diagnostic> diags;
      check_clock_conservation(w.module, assignment, options, tol, diags);
      EXPECT_EQ(diags.size(), 0u) << spec.name;
    }
  }
}

TEST(Conservation, CorruptedClockAddFailsCheckA) {
  workloads::WorkloadParams params;
  params.threads = 2;
  workloads::Workload w = workloads::all_workloads().front().factory(params);
  const pass::PassOptions options = pass::PassOptions::all();
  pass::ClockAssignment assignment;
  pass::instrument_module(w.module, options, assignment);

  // Bump the first materialized kClockAdd: the module no longer matches
  // the assignment.
  bool corrupted = false;
  for (ir::Function& func : w.module.functions()) {
    for (ir::BasicBlock& block : func.blocks()) {
      for (ir::Instr& instr : block.instrs()) {
        if (instr.op == ir::Opcode::kClockAdd && !corrupted) {
          instr.imm += 10000;
          corrupted = true;
        }
      }
    }
  }
  ASSERT_TRUE(corrupted);

  std::vector<Diagnostic> diags;
  check_clock_conservation(w.module, assignment, options, diags);
  ASSERT_GE(diags.size(), 1u);
  EXPECT_EQ(diags[0].checker, "clock-conservation");
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(Conservation, InflatedAssignmentFailsCheckB) {
  workloads::WorkloadParams params;
  params.threads = 2;
  workloads::Workload w = workloads::all_workloads().front().factory(params);
  const pass::PassOptions options = pass::PassOptions::none();
  pass::ClockAssignment assignment;
  pass::instrument_module(w.module, options, assignment);

  // Pretend the pass assigned far more clock than the block costs, and
  // patch the materialized instruction to match so Check A stays quiet:
  // only the every-path divergence bound can catch it.
  bool corrupted = false;
  for (ir::FuncId f = 0; f < w.module.functions().size() && !corrupted; ++f) {
    if (assignment.is_clocked(f)) continue;
    ir::Function& func = w.module.function(f);
    for (ir::BlockId b = 0; b < func.num_blocks() && !corrupted; ++b) {
      if (assignment.funcs[f][b].clock == 0) continue;
      for (ir::Instr& instr : func.block(b).instrs()) {
        if (instr.op == ir::Opcode::kClockAdd) {
          instr.imm += 5000;
          assignment.funcs[f][b].clock += 5000;
          corrupted = true;
          break;
        }
      }
    }
  }
  ASSERT_TRUE(corrupted);

  std::vector<Diagnostic> diags;
  check_clock_conservation(w.module, assignment, options, diags);
  ASSERT_GE(diags.size(), 1u);
  EXPECT_EQ(diags[0].checker, "clock-conservation");
  EXPECT_FALSE(diags[0].witness.empty());  // worst path is named
}

TEST(Conservation, ClockedFunctionWithClockUpdateFails) {
  workloads::WorkloadParams params;
  params.threads = 2;
  // radiosity has clockable leaf functions under Opt1.
  workloads::Workload w = workloads::make_radiosity(params);
  const pass::PassOptions options = pass::PassOptions::only_opt1();
  pass::ClockAssignment assignment;
  pass::instrument_module(w.module, options, assignment);
  ASSERT_FALSE(assignment.clocked_functions.empty());

  const ir::FuncId clocked = assignment.clocked_functions.begin()->first;
  w.module.function(clocked).block(0).instrs().insert(
      w.module.function(clocked).block(0).instrs().begin(), ir::Instr::make_clock_add(1));

  std::vector<Diagnostic> diags;
  check_clock_conservation(w.module, assignment, options, diags);
  ASSERT_GE(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("clocked"), std::string::npos);
}

}  // namespace
}  // namespace detlock::staticcheck
