// detlock_sched: inspect and compare recorded lock-acquisition schedules
// (the files produced by `detlockc --record-schedule=`).
//
//   detlock_sched stats [--limit=N] FILE   per-thread / per-mutex breakdown
//   detlock_sched diff  FILE1 FILE2        first divergence between two runs
//
// --limit=N caps each breakdown table at its N busiest rows (large runs
// touch thousands of mutexes).  The diff mode is the offline complement of
// the online ScheduleValidator: given two recordings (e.g. from two
// replicas that both completed), it pinpoints where their histories split.
#include <cstdio>
#include <map>
#include <string>

#include "cli_common.hpp"
#include "runtime/schedule.hpp"
#include "support/error.hpp"

namespace {

using namespace detlock;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s stats [--limit=N] FILE | diff FILE1 FILE2\n", argv0);
  std::exit(cli::kUsageExit);
}

std::vector<runtime::TraceEvent> load(const char* path) {
  return runtime::parse_schedule(cli::read_file_or_exit("detlock_sched", path));
}

int cmd_stats(const char* path, std::size_t limit) {
  const auto events = load(path);
  std::map<runtime::ThreadId, std::uint64_t> per_thread;
  std::map<runtime::MutexId, std::uint64_t> per_mutex;
  std::map<runtime::MutexId, std::uint64_t> handoffs;  // consecutive same-mutex, different-thread
  std::map<runtime::MutexId, runtime::ThreadId> last_holder;
  std::uint64_t max_clock = 0;
  for (const auto& e : events) {
    ++per_thread[e.thread];
    ++per_mutex[e.mutex];
    const auto it = last_holder.find(e.mutex);
    if (it != last_holder.end() && it->second != e.thread) ++handoffs[e.mutex];
    last_holder[e.mutex] = e.thread;
    max_clock = std::max(max_clock, e.clock);
  }

  std::printf("%zu acquisitions, %zu threads, %zu mutexes, final clock %llu\n\n", events.size(),
              per_thread.size(), per_mutex.size(), static_cast<unsigned long long>(max_clock));
  std::printf("per thread:\n");
  std::size_t shown = 0;
  for (const auto& [thread, count] : per_thread) {
    if (shown++ >= limit) {
      std::printf("  ... %zu more thread(s) (raise --limit)\n", per_thread.size() - limit);
      break;
    }
    std::printf("  t%-4u %8llu acquisitions (%.1f%%)\n", thread, static_cast<unsigned long long>(count),
                100.0 * static_cast<double>(count) / static_cast<double>(events.size()));
  }
  std::printf("per mutex (handoff = consecutive acquisitions by different threads):\n");
  shown = 0;
  for (const auto& [mutex, count] : per_mutex) {
    if (shown++ >= limit) {
      std::printf("  ... %zu more mutex(es) (raise --limit)\n", per_mutex.size() - limit);
      break;
    }
    std::printf("  m%-4llu %8llu acquisitions, %6llu handoffs (%.1f%%)\n",
                static_cast<unsigned long long>(mutex), static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(handoffs[mutex]),
                count > 0 ? 100.0 * static_cast<double>(handoffs[mutex]) / static_cast<double>(count) : 0.0);
  }
  return 0;
}

int cmd_diff(const char* path_a, const char* path_b) {
  const auto a = load(path_a);
  const auto b = load(path_b);
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].thread != b[i].thread || a[i].mutex != b[i].mutex || a[i].clock != b[i].clock) {
      std::printf("divergence at acquisition #%zu:\n", i);
      std::printf("  %s: thread %u, mutex %llu, clock %llu\n", path_a, a[i].thread,
                  static_cast<unsigned long long>(a[i].mutex), static_cast<unsigned long long>(a[i].clock));
      std::printf("  %s: thread %u, mutex %llu, clock %llu\n", path_b, b[i].thread,
                  static_cast<unsigned long long>(b[i].mutex), static_cast<unsigned long long>(b[i].clock));
      return 1;
    }
  }
  if (a.size() != b.size()) {
    std::printf("common prefix of %zu acquisitions, then %s has %zu more\n", n,
                a.size() > b.size() ? path_a : path_b,
                (a.size() > b.size() ? a.size() : b.size()) - n);
    return 1;
  }
  std::printf("schedules identical (%zu acquisitions)\n", n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string_view(argv[1]) == "stats") {
      std::size_t limit = 1 << 20;  // effectively unlimited by default
      const char* file = nullptr;
      for (int i = 2; i < argc; ++i) {
        if (const auto v = cli::flag_value(argv[i], "--limit=")) {
          limit = static_cast<std::size_t>(cli::parse_int_flag(
              "detlock_sched", "--limit", *v, 1, 1 << 20, [&] { usage(argv[0]); }));
        } else if (file == nullptr) {
          file = argv[i];
        } else {
          usage(argv[0]);
        }
      }
      if (file == nullptr) usage(argv[0]);
      return cmd_stats(file, limit);
    }
    if (argc == 4 && std::string_view(argv[1]) == "diff") return cmd_diff(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detlock_sched: %s\n", e.what());
    return 1;
  }
  usage(argv[0]);
}
