// detfuzz: the differential workload fuzzer.
//
//   detfuzz [--seeds=N] [--start=S]      check seeds S..S+N-1
//   detfuzz --seed=N [--dump=FILE]       one seed, verbose; reproduces any
//                                        fleet failure from the integer alone
//   detfuzz --replay=FILE                run the differential matrix over an
//                                        existing program (corpus replay)
//
// Each seed expands (src/fuzz/generator.hpp) into a deadlock-free,
// race-free random synchronization workload -- mutexes with nesting, phase
// barriers, every atomic opcode x ordering, fences -- and is executed under
// every configuration the determinism claim covers: 3 engines x 2 clock
// publication modes x (1 + chaos-seed) schedules.  Within a publication
// mode every fingerprint field must be byte-identical; across modes nothing
// is compared -- the modes are two different, each internally
// deterministic, schedules (see src/fuzz/differ.hpp for why).
//
// Flags:
//   --seeds=N         number of sequential seeds (default 16)
//   --start=S         first seed (default 0)
//   --seed=N          exactly one seed, verbose fingerprint table
//   --replay=FILE     check an IR file instead of generating
//   --dump=FILE       write the generated program (with --seed)
//   --kendo-chunk=N   chunk size of the chunked-publication leg (default 4)
//   --chaos=A,B,...   chaos seeds per config (default 5,9; "none" disables)
//   --runs=N          repetitions per config (default 1)
//   --watchdog-ms=N   per-run stall watchdog (default 10000; 0 off)
//   --budget-ms=N     stop starting new seeds after this much wall time
//                     (CI smoke; checked seeds still all count)
//   -v                per-seed progress lines
//
// Exit codes: 0 all checked seeds deterministic; 1 any divergence, stall,
// or compile failure (message ends with the reproducing command); 2 usage.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/generator.hpp"

namespace {

using namespace detlock;

[[noreturn]] void usage_exit() {
  std::fprintf(stderr,
               "usage: detfuzz [--seeds=N] [--start=S] [--seed=N] [--replay=FILE]\n"
               "               [--dump=FILE] [--kendo-chunk=N] [--chaos=A,B|none]\n"
               "               [--runs=N] [--watchdog-ms=N] [--budget-ms=N] [-v]\n");
  std::exit(cli::kUsageExit);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

void print_fingerprints(const fuzz::SeedReport& report) {
  for (const fuzz::ConfigFingerprint& fp : report.fingerprints) {
    std::printf("  %-28s result=%-6lld lock-order=%016llx memory=%016llx (%llu instrs)\n",
                fp.config.c_str(), static_cast<long long>(fp.result),
                static_cast<unsigned long long>(fp.trace),
                static_cast<unsigned long long>(fp.memory),
                static_cast<unsigned long long>(fp.instructions));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const cli::UsageFn usage = [] { usage_exit(); };
  std::int64_t seeds = 16;
  std::int64_t start = 0;
  std::int64_t single_seed = -1;
  std::string replay_path;
  std::string dump_path;
  std::int64_t budget_ms = 0;
  bool verbose = false;
  fuzz::DiffOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (const auto v = cli::flag_value(arg, "--seeds=")) {
      seeds = cli::parse_int_flag("detfuzz", "--seeds=", *v, 1, 1 << 20, usage);
    } else if (const auto v = cli::flag_value(arg, "--start=")) {
      start = cli::parse_int_flag("detfuzz", "--start=", *v, 0, INT64_MAX / 2, usage);
    } else if (const auto v = cli::flag_value(arg, "--seed=")) {
      single_seed = cli::parse_int_flag("detfuzz", "--seed=", *v, 0, INT64_MAX / 2, usage);
    } else if (const auto v = cli::flag_value(arg, "--replay=")) {
      replay_path = std::string(*v);
    } else if (const auto v = cli::flag_value(arg, "--dump=")) {
      dump_path = std::string(*v);
    } else if (const auto v = cli::flag_value(arg, "--kendo-chunk=")) {
      options.kendo_chunk = static_cast<std::uint64_t>(
          cli::parse_int_flag("detfuzz", "--kendo-chunk=", *v, 1, 1 << 24, usage));
    } else if (const auto v = cli::flag_value(arg, "--chaos=")) {
      options.chaos_seeds.clear();
      if (*v != "none") {
        std::string list(*v);
        std::size_t pos = 0;
        while (pos < list.size()) {
          const std::size_t comma = list.find(',', pos);
          const std::string item = list.substr(pos, comma == std::string::npos ? std::string::npos
                                                                               : comma - pos);
          options.chaos_seeds.push_back(static_cast<std::uint64_t>(
              cli::parse_int_flag("detfuzz", "--chaos=", item, 1, INT64_MAX / 2, usage)));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      }
    } else if (const auto v = cli::flag_value(arg, "--runs=")) {
      options.runs = static_cast<int>(cli::parse_int_flag("detfuzz", "--runs=", *v, 1, 64, usage));
    } else if (const auto v = cli::flag_value(arg, "--watchdog-ms=")) {
      options.watchdog_ms = static_cast<std::uint64_t>(
          cli::parse_int_flag("detfuzz", "--watchdog-ms=", *v, 0, INT64_MAX / 2, usage));
    } else if (const auto v = cli::flag_value(arg, "--budget-ms=")) {
      budget_ms = cli::parse_int_flag("detfuzz", "--budget-ms=", *v, 1, INT64_MAX / 2, usage);
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "detfuzz: unknown argument '%s'\n", argv[i]);
      usage_exit();
    }
  }
  if (single_seed >= 0 && !replay_path.empty()) {
    std::fprintf(stderr, "detfuzz: --seed and --replay are mutually exclusive\n");
    usage_exit();
  }

  const auto t0 = std::chrono::steady_clock::now();

  // Corpus replay: one file, full matrix.
  if (!replay_path.empty()) {
    const std::string text = cli::read_file_or_exit("detfuzz", replay_path);
    const fuzz::SeedReport report = fuzz::check_text(replay_path, text, options);
    if (report.ok) {
      std::printf("detfuzz: %s deterministic across %d runs (%.0f ms)\n", replay_path.c_str(),
                  report.runs_executed, ms_since(t0));
      if (verbose) print_fingerprints(report);
      return 0;
    }
    std::fprintf(stderr, "detfuzz: FAIL %s\n", report.failure.c_str());
    return 1;
  }

  // Single-seed mode: verbose by default (this is the reproduction path).
  if (single_seed >= 0) {
    const fuzz::SeedReport report =
        fuzz::check_seed(static_cast<std::uint64_t>(single_seed), options);
    const fuzz::GeneratedProgram& p = report.program;
    std::printf("seed %lld: threads=%d phases=%d mutexes=%d atomics=%d barriers=%s actions=%d\n",
                static_cast<long long>(single_seed), p.threads, p.phases, p.mutexes,
                p.atomic_cells, p.barriers ? "yes" : "no", p.actions);
    if (!dump_path.empty()) {
      std::ofstream out(dump_path);
      if (!out) {
        std::fprintf(stderr, "detfuzz: cannot write %s\n", dump_path.c_str());
        return 1;
      }
      out << p.ir_text;
      std::printf("wrote %s\n", dump_path.c_str());
    }
    print_fingerprints(report);
    if (report.ok) {
      std::printf("detfuzz: seed %lld deterministic across %d runs (%.0f ms)\n",
                  static_cast<long long>(single_seed), report.runs_executed, ms_since(t0));
      return 0;
    }
    std::fprintf(stderr, "detfuzz: FAIL %s\n", report.failure.c_str());
    if (dump_path.empty()) {
      std::fprintf(stderr, "(rerun with --dump=FILE to capture the program)\n");
    }
    return 1;
  }

  // Fleet mode: sequential seeds, optional wall-clock budget.
  int checked = 0, failed = 0, total_runs = 0;
  for (std::int64_t s = start; s < start + seeds; ++s) {
    if (budget_ms > 0 && checked > 0 && ms_since(t0) >= static_cast<double>(budget_ms)) {
      std::printf("detfuzz: budget reached after %d of %lld seeds\n", checked,
                  static_cast<long long>(seeds));
      break;
    }
    const fuzz::SeedReport report = fuzz::check_seed(static_cast<std::uint64_t>(s), options);
    ++checked;
    total_runs += report.runs_executed;
    if (!report.ok) {
      ++failed;
      std::fprintf(stderr, "detfuzz: FAIL %s\n", report.failure.c_str());
    } else if (verbose) {
      std::printf("seed %lld ok (%d runs, threads=%d phases=%d actions=%d)\n",
                  static_cast<long long>(s), report.runs_executed, report.program.threads,
                  report.program.phases, report.program.actions);
    }
  }
  const double elapsed = ms_since(t0);
  std::printf("detfuzz: %d seed(s), %d ok, %d failed, %d runs, %.0f ms (%.1f runs/s)\n", checked,
              checked - failed, failed, total_runs, elapsed,
              elapsed > 0 ? total_runs * 1000.0 / elapsed : 0.0);
  return failed == 0 ? 0 : 1;
}
