// detlockc: command-line driver for the DetLock pipeline.
//
//   detlockc [options] program.dl
//
// Parses a textual-IR program, runs the instrumentation pipeline, executes
// it, and reports the result plus determinism fingerprints.  Since the
// api::RunConfig consolidation the driver is a thin shell over the service
// layer: it builds one RunConfig, compiles the program ONCE
// (service::CompiledModule), and executes every repetition on a fresh
// service::ExecutionContext -- `--runs=1000` parses, instruments, and
// decodes exactly once.  Options:
//
//   --opt=none|1|2|3|4|all   optimization selection            [all]
//   --placement=start|end    clock update placement            [start]
//   --interp=decoded|reference|jit
//                            execution engine: predecoded direct-threaded
//                            loop, the block-walking reference, or the
//                            template JIT (native x86-64; falls back to
//                            decoded where unavailable)         [decoded]
//   --nondet                 plain pthread-style execution
//   --kendo[=CHUNK]          chunked clock publication         [2048]
//                            (implies end-of-block clock placement, like
//                            the harness's kendo-sim mode)
//   --runs=N                 repeat and compare fingerprints   [1]
//   --threads-max=N          runtime thread-slot budget        [64]
//   --clock-table=flat|tree  turn-predicate structure: flat O(threads)
//                            scan or hierarchical min-clock tree
//                            (docs/turn-protocol-scaling.md)   [tree]
//   --estimates=FILE         apply an instruction-estimate file
//   --emit-ir                print the instrumented IR and exit
//   --stats                  print pass + runtime statistics
//   --profile                wait-time attribution breakdown (run 1)
//   --json=FILE              write a versioned machine-readable report
//                            (docs/cli-reference.md; schema_version 1)
//   --trace-out=FILE         Chrome-trace/Perfetto JSON timeline (run 1;
//                            implies --profile; see docs/observability.md)
//   --race-check[=hb|lockset|both]
//                            dynamic race detection passes after the
//                            fingerprint runs (lints first)       [both]
//                            hb: FastTrack happens-before detector with
//                            exactly-reproducible reports (two passes:
//                            detect, then focus-replay; see
//                            docs/race-detection.md); lockset: Eraser
//                            state machine (differential cross-check)
//   --lint                   run the static checkers and exit
//   --no-lint                skip the automatic lint before --race-check
//   --record-schedule=FILE   dump the lock-acquisition schedule after run 1
//   --check-schedule=FILE    validate each run online against a recording
//                            (the paper's replica fault-detection use-case)
//   --watchdog-ms=N          stall watchdog: abort + diagnose after N ms
//                            without sync progress (see docs/fault-model.md)
//   --chaos=SEED             determinism-under-chaos mode: one clean run
//                            plus --chaos-trials timing-perturbed runs,
//                            fingerprints compared across all of them
//   --chaos-trials=K         perturbed trials for --chaos           [4]
//   --entry=NAME             entry function                    [main]
//   --arg=N                  append an i64 argument (repeatable)
//
// Exit codes (documented in docs/cli-reference.md):
//   0  success
//   1  I/O or internal error
//   2  usage error
//   3  repeated runs (or chaos trials) produced different fingerprints
//   4  replica diverged from the recorded schedule
//   5  parse error in the .dl program
//   6  IR verifier rejected the module
//   7  static checkers reported at least one error
//   8  watchdog fired: deadlock (wait-for cycle reported)
//   9  watchdog fired: stall/livelock (no cycle; slowest waiter reported)
//  10  --race-check: a dynamic race detector reported at least one race
//      (divergence, code 3, takes precedence when both occur)
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "api/run_config.hpp"
#include "cli_common.hpp"
#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "pass/estimates.hpp"
#include "runtime/profile.hpp"
#include "runtime/schedule.hpp"
#include "pass/pipeline.hpp"
#include "racedetect/hb_detector.hpp"
#include "racedetect/lockset.hpp"
#include "racedetect/report.hpp"
#include "service/compiled_module.hpp"
#include "service/execution_context.hpp"
#include "staticcheck/checker.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace {

using namespace detlock;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--opt=none|1|2|3|4|all] [--placement=start|end] [--nondet]\n"
               "          [--interp=decoded|reference|jit]\n"
               "          [--kendo[=CHUNK]] [--runs=N] [--clock-table=flat|tree]\n"
               "          [--threads-max=N] [--estimates=FILE] [--emit-ir]\n"
               "          [--stats] [--profile] [--json=FILE] [--trace-out=FILE]\n"
               "          [--race-check[=hb|lockset|both]] [--watchdog-ms=N]\n"
               "          [--chaos=SEED] [--chaos-trials=K]\n"
               "          [--lint] [--no-lint] [--entry=NAME] [--arg=N]... program.dl\n",
               argv0);
  std::exit(cli::kUsageExit);
}

std::int64_t parse_int_flag(const char* argv0, const char* flag, std::string_view value,
                            std::int64_t min_value, std::int64_t max_value) {
  return cli::parse_int_flag("detlockc", flag, value, min_value, max_value,
                             [argv0] { usage(argv0); });
}

std::string read_file(const std::string& path) { return cli::read_file_or_exit("detlockc", path); }

struct Cli {
  api::RunConfig config;
  std::string estimates_path;
  bool emit_ir = false;
  bool stats = false;
  std::string json_path;
  std::string trace_out_path;
  bool race_check = false;
  bool race_hb = false;
  bool race_lockset = false;
  bool lint = false;
  bool auto_lint = true;
  std::string record_schedule_path;
  std::string check_schedule_path;
  std::string entry = "main";
  std::vector<std::int64_t> args;
  std::string program_path;
};

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  api::RunConfig& cfg = cli.config;
  // detlockc's historical defaults: deterministic execution, all
  // optimizations, trace hashing on (it prints fingerprints every run).
  cfg.mode = api::Mode::kDetLock;
  cfg.record_trace = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) { return arg.substr(std::strlen(prefix)); };
    if (arg.rfind("--opt=", 0) == 0) {
      const std::string v = value_of("--opt=");
      if (v == "none") cfg.pass_options = pass::PassOptions::none();
      else if (v == "1") cfg.pass_options = pass::PassOptions::only_opt1();
      else if (v == "2") cfg.pass_options = pass::PassOptions::only_opt2();
      else if (v == "3") cfg.pass_options = pass::PassOptions::only_opt3();
      else if (v == "4") cfg.pass_options = pass::PassOptions::only_opt4();
      else if (v == "all") cfg.pass_options = pass::PassOptions::all();
      else usage(argv[0]);
    } else if (arg.rfind("--placement=", 0) == 0) {
      const std::string v = value_of("--placement=");
      if (v == "start") cfg.pass_options.placement = pass::ClockPlacement::kStart;
      else if (v == "end") cfg.pass_options.placement = pass::ClockPlacement::kEnd;
      else usage(argv[0]);
    } else if (arg.rfind("--interp=", 0) == 0) {
      const auto kind = api::engine_from_name(value_of("--interp="));
      if (!kind) usage(argv[0]);
      cfg.engine = *kind;
    } else if (arg == "--nondet") {
      cfg.mode = api::Mode::kClocksOnly;
    } else if (arg == "--kendo") {
      cfg.mode = api::Mode::kKendoSim;
    } else if (arg.rfind("--kendo=", 0) == 0) {
      cfg.mode = api::Mode::kKendoSim;
      cfg.kendo_chunk_size = static_cast<std::uint64_t>(parse_int_flag(
          argv[0], "--kendo", value_of("--kendo="), 1, std::numeric_limits<std::int64_t>::max()));
    } else if (arg.rfind("--runs=", 0) == 0) {
      cfg.runs = static_cast<int>(parse_int_flag(argv[0], "--runs", value_of("--runs="), 1, 1'000'000));
    } else if (arg.rfind("--threads-max=", 0) == 0) {
      cfg.threads_max = static_cast<std::uint32_t>(
          parse_int_flag(argv[0], "--threads-max", value_of("--threads-max="), 1, 1 << 16));
    } else if (arg.rfind("--clock-table=", 0) == 0) {
      const std::string v = value_of("--clock-table=");
      if (const auto kind = api::clock_table_from_name(v)) cfg.clock_table = *kind;
      else usage(argv[0]);
    } else if (arg.rfind("--estimates=", 0) == 0) {
      cli.estimates_path = value_of("--estimates=");
    } else if (arg == "--emit-ir") {
      cli.emit_ir = true;
    } else if (arg == "--stats") {
      cli.stats = true;
    } else if (arg == "--profile") {
      cfg.profile = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json_path = value_of("--json=");
      if (cli.json_path.empty()) {
        std::fprintf(stderr, "detlockc: --json needs a file name\n");
        usage(argv[0]);
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      cli.trace_out_path = value_of("--trace-out=");
      if (cli.trace_out_path.empty()) {
        std::fprintf(stderr, "detlockc: --trace-out needs a file name\n");
        usage(argv[0]);
      }
      cfg.profile = true;  // the trace is built from profiler spans
      cfg.profile_spans = true;
      // The exported timeline pairs wall-clock spans with the deterministic
      // schedule track, which needs the full event list.
      cfg.keep_trace_events = true;
    } else if (arg == "--race-check") {
      cli.race_check = cli.race_hb = cli.race_lockset = true;
    } else if (arg.rfind("--race-check=", 0) == 0) {
      const std::string v = value_of("--race-check=");
      cli.race_check = true;
      if (v == "hb") cli.race_hb = true;
      else if (v == "lockset") cli.race_lockset = true;
      else if (v == "both") cli.race_hb = cli.race_lockset = true;
      else usage(argv[0]);
    } else if (arg == "--lint") {
      cli.lint = true;
    } else if (arg == "--no-lint") {
      cli.auto_lint = false;
    } else if (arg.rfind("--watchdog-ms=", 0) == 0) {
      cfg.watchdog_ms = static_cast<std::uint64_t>(parse_int_flag(
          argv[0], "--watchdog-ms", value_of("--watchdog-ms="), 1, 86'400'000));
    } else if (arg.rfind("--chaos=", 0) == 0) {
      cfg.chaos = true;
      cfg.chaos_seed = static_cast<std::uint64_t>(parse_int_flag(
          argv[0], "--chaos", value_of("--chaos="), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (arg.rfind("--chaos-trials=", 0) == 0) {
      cfg.chaos_trials = static_cast<int>(
          parse_int_flag(argv[0], "--chaos-trials", value_of("--chaos-trials="), 1, 10'000));
    } else if (arg.rfind("--record-schedule=", 0) == 0) {
      cli.record_schedule_path = value_of("--record-schedule=");
      cfg.keep_trace_events = true;
    } else if (arg.rfind("--check-schedule=", 0) == 0) {
      cli.check_schedule_path = value_of("--check-schedule=");
    } else if (arg.rfind("--entry=", 0) == 0) {
      cli.entry = value_of("--entry=");
    } else if (arg.rfind("--arg=", 0) == 0) {
      cli.args.push_back(parse_int_flag(argv[0], "--arg", value_of("--arg="),
                                        std::numeric_limits<std::int64_t>::min(),
                                        std::numeric_limits<std::int64_t>::max()));
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else if (cli.program_path.empty()) {
      cli.program_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (cli.program_path.empty()) usage(argv[0]);
  if (const std::optional<std::string> err = cli.config.validate()) {
    std::fprintf(stderr, "detlockc: %s\n", err->c_str());
    usage(argv[0]);
  }
  return cli;
}

/// Compiles through the service layer, mapping staged failures to the
/// documented exit codes (5 parse, 6 verifier).
std::shared_ptr<const service::CompiledModule> compile_or_exit(const Cli& cli,
                                                               const std::string& text) {
  service::CompileOptions options = service::compile_options(cli.config);
  if (!cli.estimates_path.empty()) options.estimates_text = read_file(cli.estimates_path);
  try {
    return service::CompiledModule::compile(text, options);
  } catch (const service::ParseError& e) {
    std::fprintf(stderr, "detlockc: parse error: %s\n", e.what());
    std::exit(5);
  } catch (const service::VerifyError& e) {
    std::fprintf(stderr, "detlockc: verifier error: %s\n", e.what());
    std::exit(6);
  }
}

/// Parses and verifies without instrumenting (for --lint and the pre-race
/// lint, which inspect the original program).
ir::Module load_module(const Cli& cli, const std::string& text) {
  Cli baseline = cli;
  baseline.config.mode = api::Mode::kBaseline;
  // The artifact is copied out: lint doesn't need the decoded arrays.
  return compile_or_exit(baseline, text)->module();
}

/// Runs the static checkers; prints every diagnostic and a summary line.
/// Returns the number of error-severity findings (nonzero fails --lint).
std::size_t run_lint(const Cli& cli, const ir::Module& module) {
  staticcheck::CheckOptions check;
  check.entry = cli.entry;
  check.pass_options = cli.config.pass_options;
  const std::vector<staticcheck::Diagnostic> diags = staticcheck::run_all_checks(module, check);
  for (const staticcheck::Diagnostic& d : diags) {
    std::printf("%s\n", d.to_string().c_str());
  }
  const std::size_t errors = staticcheck::error_count(diags);
  std::printf("lint: %zu diagnostic(s), %zu error(s)\n", diags.size(), errors);
  return errors;
}

/// Executes one run, translating a watchdog abort into the staged exit
/// codes (8 deadlock, 9 stall); rethrows anything else.
interp::RunResult run_once_or_exit(service::ExecutionContext& ctx, const Cli& cli) {
  try {
    return ctx.run(cli.entry, cli.args);
  } catch (const std::exception&) {
    const runtime::Watchdog* wd = ctx.engine() != nullptr ? ctx.engine()->watchdog() : nullptr;
    if (wd != nullptr && wd->fired()) {
      const std::optional<runtime::StallReport> report_text = wd->report();
      std::printf("%s%s\n", report_text->text().c_str(), report_text->json().c_str());
      std::exit(report_text->deadlock ? 8 : 9);
    }
    throw;
  }
}

/// Everything the dedicated race-detection passes produced.
struct RaceCheckOutput {
  bool ran_hb = false;
  bool ran_lockset = false;
  racedetect::RunRecipe recipe;
  std::vector<std::int64_t> hb_racy_addrs;       // deterministic, sorted
  std::vector<racedetect::Race> hb_races;        // canonical minimal pairs
  std::vector<racedetect::Race> lockset_races;   // interleaving-dependent
  std::uint64_t hb_accesses = 0;
  std::uint64_t lockset_accesses = 0;

  bool any_race() const { return !hb_racy_addrs.empty() || !lockset_races.empty(); }
};

/// Runs the requested detectors, each over a fresh deterministic execution
/// of the already-compiled program.  The HB detector is two passes: detect
/// (racy-address set) then, if nonempty, a focus replay whose finalize()
/// yields the canonical reproducible report (see src/racedetect/
/// hb_detector.hpp).  Finally correlates every dynamic finding against the
/// static lockset-race checker (the static-vs-dynamic cross-check).
RaceCheckOutput run_race_check(const Cli& cli,
                               const std::shared_ptr<const service::CompiledModule>& compiled) {
  RaceCheckOutput out;
  out.ran_hb = cli.race_hb;
  out.ran_lockset = cli.race_lockset;
  out.recipe.program = cli.program_path;
  out.recipe.mode = api::mode_name(cli.config.mode);
  out.recipe.engine = api::engine_name(cli.config.engine);
  out.recipe.publication = cli.config.mode == api::Mode::kKendoSim ? "chunked" : "every-update";
  out.recipe.chaos_seed = cli.config.chaos ? cli.config.chaos_seed : 0;
  out.recipe.entry = cli.entry;

  const ir::Module& module = compiled->module();
  const auto fresh_run = [&](interp::SyncObserver* observer) {
    service::ExecutionContext ctx(compiled, cli.config);
    if (cli.config.chaos) ctx.set_chaos_seed(cli.config.chaos_seed);
    ctx.add_observer(observer);
    run_once_or_exit(ctx, cli);
  };

  if (cli.race_lockset) {
    racedetect::LocksetRaceDetector lockset(&module);
    fresh_run(&lockset);
    out.lockset_races = lockset.races();
    out.lockset_accesses = lockset.accesses_observed();
  }
  if (cli.race_hb) {
    racedetect::HbRaceDetector detect;
    fresh_run(&detect);
    out.hb_racy_addrs = detect.racy_addresses();
    out.hb_accesses = detect.accesses_observed();
    if (!out.hb_racy_addrs.empty()) {
      racedetect::HbRaceDetector focus(out.hb_racy_addrs);
      fresh_run(&focus);
      out.hb_races = focus.finalize(&module);
    }
  }

  // Quiet static pass: a dynamic race whose function the static
  // "lockset-race" checker also flags is marked static-lint:flagged.
  staticcheck::CheckOptions check;
  check.entry = cli.entry;
  check.pass_options = cli.config.pass_options;
  const std::vector<staticcheck::Diagnostic> diags = staticcheck::run_all_checks(module, check);
  const auto correlate = [&](std::vector<racedetect::Race>& races) {
    for (racedetect::Race& r : races) {
      for (const staticcheck::Diagnostic& d : diags) {
        // Diagnostics carry bare function names; reports prefix "@".
        const std::string fn = "@" + d.function;
        if (d.checker == "lockset-race" && (fn == r.first.function || fn == r.second.function)) {
          r.static_hit = true;
          break;
        }
      }
    }
  };
  correlate(out.hb_races);
  correlate(out.lockset_races);
  return out;
}

void print_race_check(const RaceCheckOutput& rc) {
  std::printf("\nrace check\n%s\n", racedetect::to_text(rc.recipe).c_str());
  if (rc.ran_hb) {
    if (rc.hb_racy_addrs.empty()) {
      std::printf("hb: race-free (%llu accesses checked)\n",
                  static_cast<unsigned long long>(rc.hb_accesses));
    } else {
      std::string addrs;
      for (const std::int64_t a : rc.hb_racy_addrs) {
        if (!addrs.empty()) addrs += ' ';
        addrs += std::to_string(a);
      }
      std::printf("hb: %zu racy address(es): %s\n%s", rc.hb_racy_addrs.size(), addrs.c_str(),
                  racedetect::serialize_races(rc.hb_races).c_str());
    }
  }
  if (rc.ran_lockset) {
    if (rc.lockset_races.empty()) {
      std::printf("lockset: race-free (%llu accesses checked)\n",
                  static_cast<unsigned long long>(rc.lockset_accesses));
    } else {
      std::printf("lockset: %zu racy address(es)\n%s", rc.lockset_races.size(),
                  racedetect::serialize_races(rc.lockset_races).c_str());
    }
  }
  if (rc.any_race()) {
    std::printf("RACE detected -- weak determinism does not cover this program\n");
  }
}

/// Accumulates the --json report (docs/cli-reference.md, schema_version 1).
struct JsonReport {
  JsonWriter w;
  bool runs_open = false;

  void begin(const Cli& cli) {
    w.begin_object();
    w.field("schema_version", kReportSchemaVersion);
    w.field("tool", "detlockc");
    w.field("program", cli.program_path);
    w.field("mode", api::mode_name(cli.config.mode));
    w.field("engine", api::engine_name(cli.config.engine));
    w.field("clock_table", api::clock_table_name(cli.config.clock_table));
    w.key("runs");
    w.begin_array();
    runs_open = true;
  }

  void add_run(int run, const interp::RunResult& r) {
    w.begin_object();
    w.field("run", run + 1);
    w.field("result", r.main_return);
    w.field_hex("lock_order_fingerprint", r.trace_fingerprint);
    w.field_hex("memory_fingerprint", r.memory_fingerprint);
    w.field("instructions", r.instructions);
    w.field("lock_acquires", r.lock_acquires);
    w.field("threads", r.threads);
    w.end();
  }

  void finish(bool identical, const pass::PipelineStats& pstats,
              const interp::RunResult& first, const runtime::ProfileSummary* profile,
              const RaceCheckOutput* race, const std::string& path) {
    w.end();  // runs
    runs_open = false;
    w.field("identical", identical);
    w.key("pass");
    w.begin_object();
    w.field("clocked_functions", static_cast<std::uint64_t>(pstats.clocked_functions));
    w.field("block_splits", static_cast<std::uint64_t>(pstats.block_splits));
    w.field("clock_sites_initial", static_cast<std::uint64_t>(pstats.clock_sites_initial));
    w.field("clock_sites_final", static_cast<std::uint64_t>(pstats.clock_sites_final));
    w.field("clock_add_sites", static_cast<std::uint64_t>(pstats.materialized.clock_add_sites));
    w.field("clock_dyn_sites", static_cast<std::uint64_t>(pstats.materialized.clock_dyn_sites));
    w.end();
    w.key("runtime");
    w.begin_object();
    w.field("lock_acquires", first.sync.lock_acquires);
    w.field("failed_trylocks", first.sync.failed_trylocks);
    w.field("lock_wait_spins", first.sync.lock_wait_spins);
    w.field("barrier_waits", first.sync.barrier_waits);
    w.end();
    if (race != nullptr) {
      w.key("race_check");
      w.begin_object();
      w.key("recipe");
      racedetect::write_recipe(w, race->recipe);
      if (race->ran_hb) {
        w.key("hb");
        w.begin_object();
        w.field("accesses", race->hb_accesses);
        w.key("racy_addresses");
        w.begin_array();
        for (const std::int64_t a : race->hb_racy_addrs) w.value(a);
        w.end();
        w.key("races");
        w.begin_array();
        for (const racedetect::Race& r : race->hb_races) racedetect::write_race(w, r);
        w.end();
        w.end();
      }
      if (race->ran_lockset) {
        w.key("lockset");
        w.begin_object();
        w.field("accesses", race->lockset_accesses);
        w.key("races");
        w.begin_array();
        for (const racedetect::Race& r : race->lockset_races) racedetect::write_race(w, r);
        w.end();
        w.end();
      }
      w.end();
    }
    if (profile != nullptr) {
      w.key("profile");
      w.begin_object();
      w.field("total_wall_ns", profile->total_wall_ns);
      w.field("total_wait_ns", profile->total_wait_ns);
      w.field("total_useful_ns", profile->total_useful_ns);
      w.field("total_instructions", profile->total_instructions);
      w.key("categories");
      w.begin_object();
      for (std::size_t c = 0; c < runtime::kNumWaitCategories; ++c) {
        w.key(runtime::wait_category_name(static_cast<runtime::WaitCategory>(c)));
        w.begin_object();
        w.field("ns", profile->totals[c].ns);
        w.field("events", profile->totals[c].events);
        w.end();
      }
      w.end();
      w.end();
    }
    w.end();  // top-level object
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "detlockc: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    out << w.str() << "\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  try {
    const std::string text = read_file(cli.program_path);

    if (cli.lint) {
      const ir::Module module = load_module(cli, text);
      return run_lint(cli, module) > 0 ? 7 : 0;
    }

    if (cli.emit_ir) {
      const std::shared_ptr<const service::CompiledModule> compiled = compile_or_exit(cli, text);
      std::printf("%s", ir::to_string(compiled->module()).c_str());
      return 0;
    }

    // The dynamic race detector assumes the program's synchronization is at
    // least statically plausible; lint first so broken programs fail fast
    // with a witness instead of a nondeterministic execution.
    if (cli.race_check && cli.auto_lint) {
      const ir::Module module = load_module(cli, text);
      if (run_lint(cli, module) > 0) {
        std::printf("lint errors; not executing (use --no-lint to force)\n");
        return 7;
      }
    }

    // Compile once: parse + estimates + verify + instrument + predecode.
    // Every repetition below reuses this immutable artifact.
    const std::shared_ptr<const service::CompiledModule> compiled = compile_or_exit(cli, text);
    const pass::PipelineStats& pstats = compiled->pass_stats();

    std::uint64_t first_trace = 0;
    std::uint64_t first_memory = 0;
    interp::RunResult first_result;
    runtime::ProfileSummary first_profile;
    bool have_profile = false;
    bool identical = true;
    std::vector<runtime::TraceEvent> expected_schedule;
    if (!cli.check_schedule_path.empty()) {
      expected_schedule = runtime::parse_schedule(read_file(cli.check_schedule_path));
    }
    JsonReport report;
    if (!cli.json_path.empty()) report.begin(cli);

    // Chaos mode: run 0 is the clean reference, runs 1..K are perturbed by
    // FaultPlan::timing_chaos with per-trial seeds; determinism demands
    // every fingerprint matches the reference.
    const int total_runs = cli.config.chaos ? 1 + cli.config.chaos_trials : cli.config.runs;
    for (int run = 0; run < total_runs; ++run) {
      api::RunConfig run_config = cli.config;
      run_config.chaos = cli.config.chaos && run > 0;

      service::ExecutionContext ctx(compiled, run_config);
      if (run_config.chaos) {
        ctx.set_chaos_seed(cli.config.chaos_seed + static_cast<std::uint64_t>(run) - 1);
      }
      std::unique_ptr<runtime::ScheduleValidator> validator;
      if (!cli.check_schedule_path.empty()) {
        validator = std::make_unique<runtime::ScheduleValidator>(expected_schedule);
        ctx.set_validator(validator.get());
      }
      const interp::RunResult result = run_once_or_exit(ctx, cli);

      std::printf("run %d: result=%lld  lock-order=%016llx  memory=%016llx  (%llu instrs, %llu locks)\n",
                  run + 1, static_cast<long long>(result.main_return),
                  static_cast<unsigned long long>(result.trace_fingerprint),
                  static_cast<unsigned long long>(result.memory_fingerprint),
                  static_cast<unsigned long long>(result.instructions),
                  static_cast<unsigned long long>(result.lock_acquires));
      if (!cli.json_path.empty()) report.add_run(run, result);
      if (run == 0) {
        first_trace = result.trace_fingerprint;
        first_memory = result.memory_fingerprint;
      } else if (result.trace_fingerprint != first_trace || result.memory_fingerprint != first_memory) {
        identical = false;
      }

      if (cli.stats && run == 0) {
        std::printf("  pass: %zu clockable functions, %zu block splits, sites %zu -> %zu, "
                    "%zu static + %zu dynamic updates\n",
                    pstats.clocked_functions, pstats.block_splits, pstats.clock_sites_initial,
                    pstats.clock_sites_final, pstats.materialized.clock_add_sites,
                    pstats.materialized.clock_dyn_sites);
        std::printf("  runtime: %llu acquires, %llu failed attempts, %llu turn spins, %llu barriers\n",
                    static_cast<unsigned long long>(result.sync.lock_acquires),
                    static_cast<unsigned long long>(result.sync.failed_trylocks),
                    static_cast<unsigned long long>(result.sync.lock_wait_spins),
                    static_cast<unsigned long long>(result.sync.barrier_waits));
      }
      if (run == 0) {
        first_result = result;
        const runtime::Profiler* prof = ctx.engine()->profiler();
        if (cli.config.profile && prof != nullptr) {
          first_profile = prof->summary();
          have_profile = true;
          std::printf("\nwait-time attribution (run 1):\n%s\n",
                      runtime::profile_breakdown(first_profile).c_str());
          if (!cli.trace_out_path.empty()) {
            std::ofstream out(cli.trace_out_path);
            if (!out) {
              std::fprintf(stderr, "detlockc: cannot write %s\n", cli.trace_out_path.c_str());
              return 1;
            }
            out << runtime::profile_to_chrome_trace(*prof, ctx.engine()->backend().trace().events());
            std::printf("  trace written to %s (load in Perfetto / chrome://tracing)\n",
                        cli.trace_out_path.c_str());
          }
        }
      }
      if (validator != nullptr) {
        if (!validator->complete()) {
          std::printf("  REPLICA DIVERGENCE: run ended after %llu of %zu recorded acquisitions\n",
                      static_cast<unsigned long long>(validator->position()), expected_schedule.size());
          return 4;
        }
        std::printf("  replica matched the recorded schedule (%zu acquisitions)\n",
                    expected_schedule.size());
      }
      if (!cli.record_schedule_path.empty() && run == 0) {
        std::ofstream out(cli.record_schedule_path);
        out << runtime::serialize_schedule(ctx.engine()->backend().trace().events());
        std::printf("  schedule recorded to %s (%llu acquisitions)\n", cli.record_schedule_path.c_str(),
                    static_cast<unsigned long long>(result.lock_acquires));
      }
    }

    // Dedicated race-detection passes: each detector observes its own fresh
    // deterministic execution, after the fingerprint runs so detection
    // cannot perturb what it certifies (and the neutrality tests verify the
    // observer changes nothing anyway).
    std::optional<RaceCheckOutput> race;
    if (cli.race_check) {
      race = run_race_check(cli, compiled);
      print_race_check(*race);
    }
    if (!cli.json_path.empty()) {
      report.finish(identical, pstats, first_result, have_profile ? &first_profile : nullptr,
                    race.has_value() ? &*race : nullptr, cli.json_path);
    }
    if (cli.config.chaos) {
      std::printf("%s\n", identical ? "chaos: all perturbed trials bit-identical"
                                    : "CHAOS DIVERGENCE: timing perturbation changed the outcome");
      if (!identical) return 3;
    } else if (cli.config.runs > 1) {
      std::printf("%s\n", identical ? "all runs identical" : "RUNS DIVERGED");
      if (!identical) return 3;
    }
    return race.has_value() && race->any_race() ? 10 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detlockc: %s\n", e.what());
    return 1;
  }
}
