// detlockc: command-line driver for the DetLock pipeline.
//
//   detlockc [options] program.dl
//
// Parses a textual-IR program, runs the instrumentation pipeline, executes
// it, and reports the result plus determinism fingerprints.  Options:
//
//   --opt=none|1|2|3|4|all   optimization selection            [all]
//   --placement=start|end    clock update placement            [start]
//   --interp=decoded|reference
//                            execution engine: predecoded direct-threaded
//                            loop or the block-walking reference [decoded]
//   --nondet                 plain pthread-style execution
//   --kendo[=CHUNK]          chunked clock publication         [2048]
//   --runs=N                 repeat and compare fingerprints   [1]
//   --threads-max=N          runtime thread-slot budget        [64]
//   --estimates=FILE         apply an instruction-estimate file
//   --emit-ir                print the instrumented IR and exit
//   --stats                  print pass + runtime statistics
//   --profile                wait-time attribution breakdown (run 1)
//   --trace-out=FILE         Chrome-trace/Perfetto JSON timeline (run 1;
//                            implies --profile; see docs/observability.md)
//   --race-check             run the lockset race detector (lints first)
//   --lint                   run the static checkers and exit
//   --no-lint                skip the automatic lint before --race-check
//   --record-schedule=FILE   dump the lock-acquisition schedule after run 1
//   --check-schedule=FILE    validate each run online against a recording
//                            (the paper's replica fault-detection use-case)
//   --watchdog-ms=N          stall watchdog: abort + diagnose after N ms
//                            without sync progress (see docs/fault-model.md)
//   --chaos=SEED             determinism-under-chaos mode: one clean run
//                            plus --chaos-trials timing-perturbed runs,
//                            fingerprints compared across all of them
//   --chaos-trials=K         perturbed trials for --chaos           [4]
//   --entry=NAME             entry function                    [main]
//   --arg=N                  append an i64 argument (repeatable)
//
// Exit codes (documented in docs/static-analysis.md):
//   0  success
//   1  I/O or internal error
//   2  usage error
//   3  repeated runs (or chaos trials) produced different fingerprints
//   4  replica diverged from the recorded schedule
//   5  parse error in the .dl program
//   6  IR verifier rejected the module
//   7  static checkers reported at least one error
//   8  watchdog fired: deadlock (wait-for cycle reported)
//   9  watchdog fired: stall/livelock (no cycle; slowest waiter reported)
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "pass/estimates.hpp"
#include "runtime/faultinject.hpp"
#include "runtime/profile.hpp"
#include "runtime/schedule.hpp"
#include "pass/pipeline.hpp"
#include "racedetect/lockset.hpp"
#include "staticcheck/checker.hpp"
#include "support/strings.hpp"

namespace {

using namespace detlock;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--opt=none|1|2|3|4|all] [--placement=start|end] [--nondet]\n"
               "          [--interp=decoded|reference]\n"
               "          [--kendo[=CHUNK]] [--runs=N] [--estimates=FILE] [--emit-ir]\n"
               "          [--stats] [--profile] [--trace-out=FILE] [--race-check]\n"
               "          [--watchdog-ms=N] [--chaos=SEED] [--chaos-trials=K]\n"
               "          [--lint] [--no-lint] [--entry=NAME] [--arg=N]... program.dl\n",
               argv0);
  std::exit(2);
}

/// Checked numeric-flag parsing.  std::atoi silently accepted '--runs=4x'
/// as 4 and '--threads-max=abc' as 0; every numeric flag now routes through
/// support/strings parse_int, and malformed or out-of-range values exit
/// with the usage code (2).
std::int64_t parse_int_flag(const char* argv0, const char* flag, std::string_view value,
                            std::int64_t min_value, std::int64_t max_value) {
  const std::optional<std::int64_t> v = parse_int(value);
  if (!v.has_value() || *v < min_value || *v > max_value) {
    std::fprintf(stderr, "detlockc: bad value '%.*s' for %s\n", static_cast<int>(value.size()),
                 value.data(), flag);
    usage(argv0);
  }
  return *v;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "detlockc: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Cli {
  pass::PassOptions options = pass::PassOptions::all();
  bool deterministic = true;
  interp::EngineKind engine = interp::EngineKind::kDecoded;
  bool kendo = false;
  std::uint64_t chunk = 2048;
  int runs = 1;
  std::uint32_t threads_max = 64;
  std::string estimates_path;
  bool emit_ir = false;
  bool stats = false;
  bool profile = false;
  std::string trace_out_path;
  bool race_check = false;
  bool lint = false;
  bool auto_lint = true;
  std::string record_schedule_path;
  std::string check_schedule_path;
  std::uint64_t watchdog_ms = 0;
  bool chaos = false;
  std::uint64_t chaos_seed = 1;
  int chaos_trials = 4;
  std::string entry = "main";
  std::vector<std::int64_t> args;
  std::string program_path;
};

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) { return arg.substr(std::strlen(prefix)); };
    if (arg.rfind("--opt=", 0) == 0) {
      const std::string v = value_of("--opt=");
      if (v == "none") cli.options = pass::PassOptions::none();
      else if (v == "1") cli.options = pass::PassOptions::only_opt1();
      else if (v == "2") cli.options = pass::PassOptions::only_opt2();
      else if (v == "3") cli.options = pass::PassOptions::only_opt3();
      else if (v == "4") cli.options = pass::PassOptions::only_opt4();
      else if (v == "all") cli.options = pass::PassOptions::all();
      else usage(argv[0]);
    } else if (arg.rfind("--placement=", 0) == 0) {
      const std::string v = value_of("--placement=");
      if (v == "start") cli.options.placement = pass::ClockPlacement::kStart;
      else if (v == "end") cli.options.placement = pass::ClockPlacement::kEnd;
      else usage(argv[0]);
    } else if (arg.rfind("--interp=", 0) == 0) {
      const std::string v = value_of("--interp=");
      if (v == "decoded") cli.engine = interp::EngineKind::kDecoded;
      else if (v == "reference") cli.engine = interp::EngineKind::kReference;
      else usage(argv[0]);
    } else if (arg == "--nondet") {
      cli.deterministic = false;
    } else if (arg == "--kendo") {
      cli.kendo = true;
    } else if (arg.rfind("--kendo=", 0) == 0) {
      cli.kendo = true;
      cli.chunk = static_cast<std::uint64_t>(parse_int_flag(
          argv[0], "--kendo", value_of("--kendo="), 1, std::numeric_limits<std::int64_t>::max()));
    } else if (arg.rfind("--runs=", 0) == 0) {
      cli.runs = static_cast<int>(parse_int_flag(argv[0], "--runs", value_of("--runs="), 1, 1'000'000));
    } else if (arg.rfind("--threads-max=", 0) == 0) {
      cli.threads_max = static_cast<std::uint32_t>(
          parse_int_flag(argv[0], "--threads-max", value_of("--threads-max="), 1, 1 << 16));
    } else if (arg.rfind("--estimates=", 0) == 0) {
      cli.estimates_path = value_of("--estimates=");
    } else if (arg == "--emit-ir") {
      cli.emit_ir = true;
    } else if (arg == "--stats") {
      cli.stats = true;
    } else if (arg == "--profile") {
      cli.profile = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      cli.trace_out_path = value_of("--trace-out=");
      if (cli.trace_out_path.empty()) {
        std::fprintf(stderr, "detlockc: --trace-out needs a file name\n");
        usage(argv[0]);
      }
      cli.profile = true;  // the trace is built from profiler spans
    } else if (arg == "--race-check") {
      cli.race_check = true;
    } else if (arg == "--lint") {
      cli.lint = true;
    } else if (arg == "--no-lint") {
      cli.auto_lint = false;
    } else if (arg.rfind("--watchdog-ms=", 0) == 0) {
      cli.watchdog_ms = static_cast<std::uint64_t>(parse_int_flag(
          argv[0], "--watchdog-ms", value_of("--watchdog-ms="), 1, 86'400'000));
    } else if (arg.rfind("--chaos=", 0) == 0) {
      cli.chaos = true;
      cli.chaos_seed = static_cast<std::uint64_t>(parse_int_flag(
          argv[0], "--chaos", value_of("--chaos="), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (arg.rfind("--chaos-trials=", 0) == 0) {
      cli.chaos_trials = static_cast<int>(
          parse_int_flag(argv[0], "--chaos-trials", value_of("--chaos-trials="), 1, 10'000));
    } else if (arg.rfind("--record-schedule=", 0) == 0) {
      cli.record_schedule_path = value_of("--record-schedule=");
    } else if (arg.rfind("--check-schedule=", 0) == 0) {
      cli.check_schedule_path = value_of("--check-schedule=");
    } else if (arg.rfind("--entry=", 0) == 0) {
      cli.entry = value_of("--entry=");
    } else if (arg.rfind("--arg=", 0) == 0) {
      cli.args.push_back(parse_int_flag(argv[0], "--arg", value_of("--arg="),
                                        std::numeric_limits<std::int64_t>::min(),
                                        std::numeric_limits<std::int64_t>::max()));
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else if (cli.program_path.empty()) {
      cli.program_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (cli.program_path.empty() || cli.runs < 1) usage(argv[0]);
  return cli;
}

/// Parses and verifies the program, mapping failures to the documented
/// stage exit codes (5 parse, 6 verifier).
ir::Module load_module(const Cli& cli, const std::string& text) {
  ir::Module module;
  try {
    module = ir::parse_module(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detlockc: parse error: %s\n", e.what());
    std::exit(5);
  }
  try {
    if (!cli.estimates_path.empty()) {
      pass::apply_estimate_file(module, read_file(cli.estimates_path));
    }
    ir::verify_module_or_throw(module);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detlockc: verifier error: %s\n", e.what());
    std::exit(6);
  }
  return module;
}

/// Runs the static checkers; prints every diagnostic and a summary line.
/// Returns the number of error-severity findings (nonzero fails --lint).
std::size_t run_lint(const Cli& cli, const ir::Module& module) {
  staticcheck::CheckOptions check;
  check.entry = cli.entry;
  check.pass_options = cli.options;
  const std::vector<staticcheck::Diagnostic> diags = staticcheck::run_all_checks(module, check);
  for (const staticcheck::Diagnostic& d : diags) {
    std::printf("%s\n", d.to_string().c_str());
  }
  const std::size_t errors = staticcheck::error_count(diags);
  std::printf("lint: %zu diagnostic(s), %zu error(s)\n", diags.size(), errors);
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  try {
    const std::string text = read_file(cli.program_path);

    if (cli.lint) {
      const ir::Module module = load_module(cli, text);
      return run_lint(cli, module) > 0 ? 7 : 0;
    }

    if (cli.emit_ir) {
      ir::Module module = load_module(cli, text);
      pass::instrument_module(module, cli.options);
      std::printf("%s", ir::to_string(module).c_str());
      return 0;
    }

    // The dynamic race detector assumes the program's synchronization is at
    // least statically plausible; lint first so broken programs fail fast
    // with a witness instead of a nondeterministic execution.
    if (cli.race_check && cli.auto_lint) {
      const ir::Module module = load_module(cli, text);
      if (run_lint(cli, module) > 0) {
        std::printf("lint errors; not executing (use --no-lint to force)\n");
        return 7;
      }
    }

    std::uint64_t first_trace = 0;
    std::uint64_t first_memory = 0;
    bool identical = true;
    std::vector<runtime::TraceEvent> expected_schedule;
    if (!cli.check_schedule_path.empty()) {
      expected_schedule = runtime::parse_schedule(read_file(cli.check_schedule_path));
    }
    // Chaos mode: run 0 is the clean reference, runs 1..K are perturbed by
    // FaultPlan::timing_chaos with per-trial seeds; determinism demands
    // every fingerprint matches the reference.
    const int total_runs = cli.chaos ? 1 + cli.chaos_trials : cli.runs;
    for (int run = 0; run < total_runs; ++run) {
      ir::Module module = load_module(cli, text);
      const pass::PipelineStats pstats = pass::instrument_module(module, cli.options);

      interp::EngineConfig config;
      config.deterministic = cli.deterministic;
      config.engine = cli.engine;
      config.runtime.max_threads = cli.threads_max;
      if (!cli.record_schedule_path.empty()) config.runtime.keep_trace_events = true;
      if (cli.profile) {
        config.runtime.profile = true;
        config.runtime.profile_spans = !cli.trace_out_path.empty();
        // The exported timeline pairs wall-clock spans with the
        // deterministic schedule track, which needs the full event list.
        if (!cli.trace_out_path.empty()) config.runtime.keep_trace_events = true;
      }
      std::unique_ptr<runtime::ScheduleValidator> validator;
      if (!cli.check_schedule_path.empty()) {
        validator = std::make_unique<runtime::ScheduleValidator>(expected_schedule);
        config.runtime.validator = validator.get();
      }
      if (cli.kendo) {
        config.runtime.publication = runtime::ClockPublication::kChunked;
        config.runtime.chunk_size = cli.chunk;
      }
      racedetect::LocksetRaceDetector detector;
      if (cli.race_check) config.observer = &detector;

      config.runtime.watchdog_ms = cli.watchdog_ms;
      std::unique_ptr<runtime::FaultInjector> injector;
      if (cli.chaos && run > 0) {
        injector = std::make_unique<runtime::FaultInjector>(
            runtime::FaultPlan::timing_chaos(cli.chaos_seed + static_cast<std::uint64_t>(run) - 1),
            cli.threads_max);
        config.runtime.fault = injector.get();
      }

      interp::Engine engine(module, config);
      interp::RunResult result;
      try {
        result = engine.run(cli.entry, cli.args);
      } catch (const std::exception&) {
        // A watchdog abort is a diagnosis, not an internal error: print the
        // report (text + JSON) and exit with the staged code.
        const runtime::Watchdog* wd = engine.watchdog();
        if (wd != nullptr && wd->fired()) {
          const std::optional<runtime::StallReport> report = wd->report();
          std::printf("%s%s\n", report->text().c_str(), report->json().c_str());
          return report->deadlock ? 8 : 9;
        }
        throw;
      }

      std::printf("run %d: result=%lld  lock-order=%016llx  memory=%016llx  (%llu instrs, %llu locks)\n",
                  run + 1, static_cast<long long>(result.main_return),
                  static_cast<unsigned long long>(result.trace_fingerprint),
                  static_cast<unsigned long long>(result.memory_fingerprint),
                  static_cast<unsigned long long>(result.instructions),
                  static_cast<unsigned long long>(result.lock_acquires));
      if (run == 0) {
        first_trace = result.trace_fingerprint;
        first_memory = result.memory_fingerprint;
      } else if (result.trace_fingerprint != first_trace || result.memory_fingerprint != first_memory) {
        identical = false;
      }

      if (cli.stats && run == 0) {
        std::printf("  pass: %zu clockable functions, %zu block splits, sites %zu -> %zu, "
                    "%zu static + %zu dynamic updates\n",
                    pstats.clocked_functions, pstats.block_splits, pstats.clock_sites_initial,
                    pstats.clock_sites_final, pstats.materialized.clock_add_sites,
                    pstats.materialized.clock_dyn_sites);
        std::printf("  runtime: %llu acquires, %llu failed attempts, %llu turn spins, %llu barriers\n",
                    static_cast<unsigned long long>(result.sync.lock_acquires),
                    static_cast<unsigned long long>(result.sync.failed_trylocks),
                    static_cast<unsigned long long>(result.sync.lock_wait_spins),
                    static_cast<unsigned long long>(result.sync.barrier_waits));
      }
      if (cli.profile && run == 0) {
        const runtime::Profiler* prof = engine.profiler();
        if (prof != nullptr) {
          std::printf("\nwait-time attribution (run 1):\n%s\n",
                      runtime::profile_breakdown(prof->summary()).c_str());
        }
        if (!cli.trace_out_path.empty() && prof != nullptr) {
          std::ofstream out(cli.trace_out_path);
          if (!out) {
            std::fprintf(stderr, "detlockc: cannot write %s\n", cli.trace_out_path.c_str());
            return 1;
          }
          out << runtime::profile_to_chrome_trace(*prof, engine.backend().trace().events());
          std::printf("  trace written to %s (load in Perfetto / chrome://tracing)\n",
                      cli.trace_out_path.c_str());
        }
      }
      if (validator != nullptr) {
        if (!validator->complete()) {
          std::printf("  REPLICA DIVERGENCE: run ended after %llu of %zu recorded acquisitions\n",
                      static_cast<unsigned long long>(validator->position()), expected_schedule.size());
          return 4;
        }
        std::printf("  replica matched the recorded schedule (%zu acquisitions)\n",
                    expected_schedule.size());
      }
      if (!cli.record_schedule_path.empty() && run == 0) {
        std::ofstream out(cli.record_schedule_path);
        out << runtime::serialize_schedule(engine.backend().trace().events());
        std::printf("  schedule recorded to %s (%llu acquisitions)\n", cli.record_schedule_path.c_str(),
                    static_cast<unsigned long long>(result.lock_acquires));
      }
      if (cli.race_check && run == 0) {
        if (detector.race_detected()) {
          std::printf("  RACE detected at address %lld -- weak determinism does not cover this program\n",
                      static_cast<long long>(detector.races()[0].addr));
        } else {
          std::printf("  race-free (%llu accesses checked)\n",
                      static_cast<unsigned long long>(detector.accesses_observed()));
        }
      }
    }
    if (cli.chaos) {
      std::printf("%s\n", identical ? "chaos: all perturbed trials bit-identical"
                                    : "CHAOS DIVERGENCE: timing perturbation changed the outcome");
      return identical ? 0 : 3;
    }
    if (cli.runs > 1) {
      std::printf("%s\n", identical ? "all runs identical" : "RUNS DIVERGED");
      return identical ? 0 : 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detlockc: %s\n", e.what());
    return 1;
  }
}
