// Flag-parsing and file helpers shared by the detlock command-line tools
// (detlockc, detlock_sched, detserve).
//
// Every tool used to hand-roll these with subtly different failure
// behavior; now a malformed numeric flag prints the same one-line
// diagnostic ("TOOL: bad value 'X' for FLAG"), shows the tool's usage, and
// exits with the shared usage code 2 -- asserted by
// tests/tools/cli_flags_test (one test, three binaries).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace detlock::cli {

/// Exit code for usage errors, shared by all tools.
inline constexpr int kUsageExit = 2;

/// A [[noreturn]] callback printing the tool's usage and exiting with
/// kUsageExit (std::function can't spell noreturn; the callee relies on it).
using UsageFn = std::function<void()>;

/// Checked numeric-flag parsing.  std::atoi silently accepted '--runs=4x'
/// as 4 and '--threads-max=abc' as 0; every numeric flag routes through
/// support/strings parse_int, and malformed or out-of-range values print
///   TOOL: bad value 'VALUE' for FLAG
/// and invoke `usage` (which must not return).
std::int64_t parse_int_flag(const char* tool, const char* flag, std::string_view value,
                            std::int64_t min_value, std::int64_t max_value, const UsageFn& usage);

/// parse_int_flag for real-valued flags (bench --min-ratio=).  Same
/// diagnostic and exit discipline; rejects NaN and values outside
/// [min_value, max_value].
double parse_double_flag(const char* tool, const char* flag, std::string_view value,
                         double min_value, double max_value, const UsageFn& usage);

/// Positional-argument variant for the bench harnesses: parses argv[index]
/// when present, else returns `fallback`.  std::atoi silently turned
/// './bench 4x' into 4 and './bench abc' into 0; this prints
///   TOOL: bad value 'X' for NAME
///   usage: TOOL USAGE_TAIL
/// and exits kUsageExit instead.
std::int64_t parse_positional(const char* tool, const char* name, int argc, char** argv, int index,
                              std::int64_t fallback, std::int64_t min_value,
                              std::int64_t max_value, const char* usage_tail);

/// If `arg` starts with `prefix` (e.g. "--runs="), returns the remainder.
std::optional<std::string_view> flag_value(std::string_view arg, std::string_view prefix);

/// Reads a whole file; on failure prints "TOOL: cannot open PATH" and exits
/// with code 1 (I/O error).
std::string read_file_or_exit(const char* tool, const std::string& path);

}  // namespace detlock::cli
