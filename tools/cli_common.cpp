#include "cli_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/strings.hpp"

namespace detlock::cli {

std::int64_t parse_int_flag(const char* tool, const char* flag, std::string_view value,
                            std::int64_t min_value, std::int64_t max_value, const UsageFn& usage) {
  const std::optional<std::int64_t> v = parse_int(value);
  if (!v.has_value() || *v < min_value || *v > max_value) {
    std::fprintf(stderr, "%s: bad value '%.*s' for %s\n", tool, static_cast<int>(value.size()),
                 value.data(), flag);
    usage();
    std::exit(kUsageExit);  // not reached: usage exits
  }
  return *v;
}

double parse_double_flag(const char* tool, const char* flag, std::string_view value,
                         double min_value, double max_value, const UsageFn& usage) {
  const std::optional<double> v = parse_double(value);
  // NaN fails both range comparisons, so it falls into the error path.
  if (!v.has_value() || !(*v >= min_value && *v <= max_value)) {
    std::fprintf(stderr, "%s: bad value '%.*s' for %s\n", tool, static_cast<int>(value.size()),
                 value.data(), flag);
    usage();
    std::exit(kUsageExit);  // not reached: usage exits
  }
  return *v;
}

std::int64_t parse_positional(const char* tool, const char* name, int argc, char** argv, int index,
                              std::int64_t fallback, std::int64_t min_value,
                              std::int64_t max_value, const char* usage_tail) {
  if (argc <= index) return fallback;
  return parse_int_flag(tool, name, argv[index], min_value, max_value, [tool, usage_tail] {
    std::fprintf(stderr, "usage: %s %s\n", tool, usage_tail);
    std::exit(kUsageExit);
  });
}

std::optional<std::string_view> flag_value(std::string_view arg, std::string_view prefix) {
  if (!starts_with(arg, prefix)) return std::nullopt;
  return arg.substr(prefix.size());
}

std::string read_file_or_exit(const char* tool, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", tool, path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace detlock::cli
