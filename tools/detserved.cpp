// detserved: persistent deterministic-execution server.
//
//   detserved [options]
//
// Listens on a Unix or TCP socket, accepts JOB requests over the
// line-oriented wire protocol (docs/serving.md), executes them on a shared
// ModuleCache + warm-context BatchExecutor pool, and streams one JSON
// result frame per job as it finishes.  Overload answers structured
// RETRY_AFTER frames (admission control) instead of blocking; SIGTERM or
// SIGINT begins a graceful drain: stop admitting, finish in-flight work
// until --drain-timeout-ms, abort the rest with ABORTED frames, then exit.
//
//   --listen=ADDR          tcp:HOST:PORT, tcp:PORT, or unix:PATH
//                          (tcp port 0 = kernel-assigned) [tcp:127.0.0.1:0]
//   --workers=N            executor worker threads                       [4]
//   --queue-cap=N          executor pending-queue bound                 [16]
//   --client-quota=R[:B]   per-client token bucket: R jobs/sec refill,
//                          optional burst B (0 disables the quota)    [0:16]
//   --client-backlog=N     parked jobs allowed per client              [16]
//   --drain-timeout-ms=N   drain grace for in-flight + queued work   [5000]
//   --deadline-ms=N        default per-job watchdog (0 = unbounded) [10000]
//   --cache-capacity=N     compiled-module LRU capacity                [64]
//   --no-context-pool      run every job on a fresh ExecutionContext
//   --chaos-crash-every=N  crash the worker on every Nth first-attempt
//                          job (tests the crash-retry path; 0 = off)    [0]
//
// Prints exactly one "detserved: listening on ADDR" line to stdout once
// ready (scripts parse it for the resolved ephemeral port).  Exit codes:
// 0 clean drain (every accepted job reached a terminal status), 1 unclean
// drain or runtime error, 2 usage error.
#include <csignal>
#include <cstdio>
#include <string>

#include "cli_common.hpp"
#include "service/server.hpp"
#include "support/strings.hpp"

namespace {

using namespace detlock;

service::Server* g_server = nullptr;

// Only async-signal-safe work here: request_drain is a single atomic store;
// the drain itself runs on the main thread inside run_until_drained().
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen=ADDR] [--workers=N] [--queue-cap=N]\n"
               "          [--client-quota=R[:B]] [--client-backlog=N]\n"
               "          [--drain-timeout-ms=N] [--deadline-ms=N]\n"
               "          [--cache-capacity=N] [--no-context-pool]\n"
               "          [--chaos-crash-every=N]\n",
               argv0);
  std::exit(cli::kUsageExit);
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerOptions options;
  const cli::UsageFn usage_fn = [argv] { usage(argv[0]); };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const auto v = cli::flag_value(arg, "--listen=")) {
      options.listen = std::string(*v);
    } else if (const auto v = cli::flag_value(arg, "--workers=")) {
      options.workers = static_cast<std::size_t>(
          cli::parse_int_flag("detserved", "--workers", *v, 1, 256, usage_fn));
    } else if (const auto v = cli::flag_value(arg, "--queue-cap=")) {
      options.queue_capacity = static_cast<std::size_t>(
          cli::parse_int_flag("detserved", "--queue-cap", *v, 1, 1 << 20, usage_fn));
    } else if (const auto v = cli::flag_value(arg, "--client-quota=")) {
      // R[:B] -- refill rate in jobs/sec, optional bucket burst.
      const std::size_t colon = v->find(':');
      const std::string_view rate = colon == std::string_view::npos ? *v : v->substr(0, colon);
      options.admission.quota_rate =
          cli::parse_double_flag("detserved", "--client-quota", rate, 0.0, 1e9, usage_fn);
      if (colon != std::string_view::npos) {
        options.admission.quota_burst = cli::parse_double_flag(
            "detserved", "--client-quota", v->substr(colon + 1), 1.0, 1e9, usage_fn);
      }
    } else if (const auto v = cli::flag_value(arg, "--client-backlog=")) {
      options.admission.client_backlog_cap = static_cast<std::size_t>(
          cli::parse_int_flag("detserved", "--client-backlog", *v, 1, 1 << 20, usage_fn));
    } else if (const auto v = cli::flag_value(arg, "--drain-timeout-ms=")) {
      options.drain_timeout_ms = static_cast<std::uint64_t>(
          cli::parse_int_flag("detserved", "--drain-timeout-ms", *v, 0, 3'600'000, usage_fn));
    } else if (const auto v = cli::flag_value(arg, "--deadline-ms=")) {
      options.deadline_ms = static_cast<std::uint64_t>(
          cli::parse_int_flag("detserved", "--deadline-ms", *v, 0, 3'600'000, usage_fn));
    } else if (const auto v = cli::flag_value(arg, "--cache-capacity=")) {
      options.cache_capacity = static_cast<std::size_t>(
          cli::parse_int_flag("detserved", "--cache-capacity", *v, 1, 1 << 20, usage_fn));
    } else if (arg == "--no-context-pool") {
      options.context_pool = false;
    } else if (const auto v = cli::flag_value(arg, "--chaos-crash-every=")) {
      options.chaos_crash_every = static_cast<std::uint64_t>(
          cli::parse_int_flag("detserved", "--chaos-crash-every", *v, 0, 1 << 20, usage_fn));
    } else {
      usage(argv[0]);
    }
  }

  try {
    service::Server server(options);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    std::printf("detserved: listening on %s (workers=%zu queue-cap=%zu)\n",
                server.listen_address().c_str(), options.workers, options.queue_capacity);
    std::fflush(stdout);

    const int rc = server.run_until_drained();
    g_server = nullptr;
    std::printf("detserved: drained %s\n", rc == 0 ? "clean" : "UNCLEAN");
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detserved: %s\n", e.what());
    return 1;
  }
}
