#!/usr/bin/env python3
"""Line-framed detserved client for smoke tests and CI.

Connects to a running detserved instance, submits the given jobs (honoring
RETRY_AFTER back-pressure), waits for every result frame, and checks each
job's exit_code against its expectation.  Stdlib only.

Usage:
  serve_client.py --connect tcp:PORT|unix:PATH [--drain] JOB...

Each JOB is one argument of the form
  NAME;IR_PATH;EXPECT;OPTIONS
where EXPECT is an exit code or a |-separated set ("4|8" accepts either),
and OPTIONS is an optional space-separated manifest option string
("runs=2 watchdog-ms=400").

With --drain the client keeps reading after the last result until the
server's shutdown broadcast arrives, and requires it to report a clean
drain -- the SIGTERM half of the smoke test.

Exit status: 0 all expectations met (and drain clean, when requested),
1 otherwise, 2 usage.
"""

import json
import socket
import sys
import time


def fail(msg):
    print("serve_client: " + msg, file=sys.stderr)
    sys.exit(1)


def connect(spec):
    if spec.startswith("tcp:"):
        sock = socket.create_connection(("127.0.0.1", int(spec[4:])), timeout=60)
    elif spec.startswith("unix:"):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(60)
        sock.connect(spec[5:])
    else:
        print("serve_client: bad --connect spec: " + spec, file=sys.stderr)
        sys.exit(2)
    return sock


class FrameReader:
    def __init__(self, sock):
        self.sock = sock
        self.buf = b""

    def read_frame(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                fail("connection closed by server")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)


def main(argv):
    connect_spec = None
    want_drain = False
    jobs = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--connect":
            i += 1
            connect_spec = argv[i]
        elif arg.startswith("--connect="):
            connect_spec = arg[len("--connect="):]
        elif arg == "--drain":
            want_drain = True
        else:
            parts = arg.split(";")
            if len(parts) not in (3, 4):
                print("serve_client: bad job spec: " + arg, file=sys.stderr)
                sys.exit(2)
            name, path, expect = parts[0], parts[1], parts[2]
            options = parts[3] if len(parts) == 4 else ""
            with open(path, "rb") as f:
                body = f.read()
            jobs.append({
                "name": name,
                "body": body,
                "expect": {int(e) for e in expect.split("|")},
                "options": options,
            })
        i += 1
    if connect_spec is None or not jobs:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    sock = connect(connect_spec)
    reader = FrameReader(sock)
    results = {}

    def submit(job):
        header = "JOB %s %d" % (job["name"], len(job["body"]))
        if job["options"]:
            header += " " + job["options"]
        sock.sendall(header.encode() + b"\n" + job["body"])

    # Submit jobs one at a time (next submission goes out as soon as the
    # previous one is accepted); results stream back interleaved.
    pending = list(jobs)
    submit(pending[0])
    inflight = pending.pop(0)
    retries = 0
    while inflight is not None or len(results) < len(jobs):
        frame = reader.read_frame()
        ftype = frame.get("type")
        if ftype == "retry_after":
            retries += 1
            if retries > 500:
                fail("gave up after 500 RETRY_AFTER bounces")
            time.sleep(min(frame.get("retry_after_ms", 10), 50) / 1000.0)
            submit(inflight)
        elif ftype == "accepted":
            inflight = pending.pop(0) if pending else None
            if inflight is not None:
                submit(inflight)
        elif ftype == "result":
            results[frame["name"]] = frame
        elif ftype == "drained":
            fail("server drained before all results arrived")
        else:
            fail("unexpected frame: " + json.dumps(frame))

    ok = True
    for job in jobs:
        frame = results.get(job["name"])
        if frame is None:
            print("serve_client: no result for %s" % job["name"], file=sys.stderr)
            ok = False
            continue
        if frame.get("exit_code") not in job["expect"]:
            print("serve_client: %s: exit_code %s not in %s (status %s: %s)" % (
                job["name"], frame.get("exit_code"), sorted(job["expect"]),
                frame.get("status"), frame.get("error", "")), file=sys.stderr)
            ok = False

    if want_drain:
        frame = reader.read_frame()
        while frame.get("type") != "drained":
            frame = reader.read_frame()
        if not frame.get("clean"):
            print("serve_client: drain reported unclean", file=sys.stderr)
            ok = False

    sock.close()
    if not ok:
        sys.exit(1)
    for job in jobs:
        frame = results[job["name"]]
        print("serve_client: %s -> %s (exit %d)" % (
            job["name"], frame.get("status"), frame.get("exit_code")))


if __name__ == "__main__":
    main(sys.argv)
