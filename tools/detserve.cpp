// detserve: concurrent batch execution service for DetLock programs.
//
//   detserve [options] manifest.jobs
//
// Reads a jobs manifest (format: docs/serving.md), compiles every distinct
// (program, compile options) pair exactly once through a shared
// service::ModuleCache, executes all jobs on a BatchExecutor worker pool,
// and prints one versioned JSON report (docs/cli-reference.md,
// schema_version 1).  Per-job failures -- parse/verify errors, divergence,
// watchdog deadlock/stall -- are isolated: they mark that job's entry with
// the documented staged exit code and leave the rest of the batch running.
//
//   --workers=N          concurrent worker threads               [4]
//   --queue-capacity=N   pending-job bound (submit backpressure) [64]
//   --cache-capacity=N   compiled-module LRU capacity            [64]
//   --out=FILE           write the JSON report to FILE, print a
//                        one-line-per-job summary to stdout
//
// Exit codes: 0 all jobs ok; 1 at least one job failed (or I/O error);
// 2 usage or manifest error.
#include <cstdio>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "service/batch_executor.hpp"
#include "service/manifest.hpp"
#include "service/module_cache.hpp"
#include "support/json.hpp"

namespace {

using namespace detlock;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers=N] [--queue-capacity=N] [--cache-capacity=N]\n"
               "          [--out=FILE] manifest.jobs\n",
               argv0);
  std::exit(cli::kUsageExit);
}

/// PROGRAM paths in a manifest resolve relative to the manifest file, so a
/// manifest works from any cwd.
std::string resolve_path(const std::string& manifest_path, const std::string& program) {
  if (!program.empty() && program.front() == '/') return program;
  const std::size_t slash = manifest_path.rfind('/');
  if (slash == std::string::npos) return program;
  return manifest_path.substr(0, slash + 1) + program;
}

void write_report(JsonWriter& w, const std::vector<service::JobResult>& results,
                  const service::ModuleCache::Stats& cache, std::size_t workers,
                  double wall_seconds) {
  std::size_t ok = 0;
  for (const service::JobResult& r : results) {
    if (r.status == service::JobStatus::kOk) ++ok;
  }

  w.begin_object();
  w.field("schema_version", kReportSchemaVersion);
  w.field("tool", "detserve");
  w.field("workers", static_cast<std::uint64_t>(workers));
  w.key("jobs");
  w.begin_array();
  for (const service::JobResult& r : results) {
    w.begin_object();
    w.field("name", r.name);
    w.field("status", service::job_status_name(r.status));
    w.field("exit_code", r.exit_code);
    if (!r.error.empty()) w.field("error", r.error);
    w.field("cache_hit", r.cache_hit);
    w.field("runs_completed", r.runs_completed);
    if (r.runs_completed > 0) {
      w.field("result", r.main_return);
      w.field_hex("lock_order_fingerprint", r.trace_fingerprint);
      w.field_hex("memory_fingerprint", r.memory_fingerprint);
      w.field("instructions", r.instructions);
      w.field("lock_acquires", r.lock_acquires);
      w.field("threads", r.threads);
    }
    w.field("run_seconds", r.run_seconds);
    if (!r.schedule.empty()) w.field("schedule", r.schedule);
    w.end();
  }
  w.end();
  w.key("cache");
  w.begin_object();
  w.field("hits", cache.hits);
  w.field("misses", cache.misses);
  w.field("evictions", cache.evictions);
  w.field("compile_errors", cache.compile_errors);
  w.field("inflight_waits", cache.inflight_waits);
  w.field("entries", static_cast<std::uint64_t>(cache.entries));
  w.end();
  w.key("summary");
  w.begin_object();
  w.field("jobs", static_cast<std::uint64_t>(results.size()));
  w.field("ok", static_cast<std::uint64_t>(ok));
  w.field("failed", static_cast<std::uint64_t>(results.size() - ok));
  w.field("wall_seconds", wall_seconds);
  w.end();
  w.end();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  std::size_t cache_capacity = 64;
  std::string out_path;
  std::string manifest_path;

  const cli::UsageFn usage_fn = [argv] { usage(argv[0]); };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const auto v = cli::flag_value(arg, "--workers=")) {
      workers = static_cast<std::size_t>(
          cli::parse_int_flag("detserve", "--workers", *v, 1, 256, usage_fn));
    } else if (const auto v = cli::flag_value(arg, "--queue-capacity=")) {
      queue_capacity = static_cast<std::size_t>(
          cli::parse_int_flag("detserve", "--queue-capacity", *v, 1, 1 << 20, usage_fn));
    } else if (const auto v = cli::flag_value(arg, "--cache-capacity=")) {
      cache_capacity = static_cast<std::size_t>(
          cli::parse_int_flag("detserve", "--cache-capacity", *v, 1, 1 << 20, usage_fn));
    } else if (const auto v = cli::flag_value(arg, "--out=")) {
      out_path = std::string(*v);
      if (out_path.empty()) {
        std::fprintf(stderr, "detserve: --out needs a file name\n");
        usage(argv[0]);
      }
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (manifest_path.empty()) usage(argv[0]);

  try {
    std::string error;
    std::optional<service::Manifest> manifest =
        service::parse_manifest(cli::read_file_or_exit("detserve", manifest_path), error);
    if (!manifest) {
      std::fprintf(stderr, "detserve: %s: %s\n", manifest_path.c_str(), error.c_str());
      return cli::kUsageExit;
    }

    service::ModuleCache cache(cache_capacity);
    service::BatchExecutor::Options options;
    options.workers = workers;
    options.queue_capacity = queue_capacity;
    service::BatchExecutor executor(cache, options);

    const auto start = std::chrono::steady_clock::now();
    for (service::ManifestJob& job : manifest->jobs) {
      job.spec.ir_text =
          cli::read_file_or_exit("detserve", resolve_path(manifest_path, job.program_path));
      executor.submit(std::move(job.spec));
    }
    const std::vector<service::JobResult>& results = executor.wait();
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    JsonWriter w;
    write_report(w, results, cache.stats(), workers, wall_seconds);

    int exit_code = 0;
    for (const service::JobResult& r : results) {
      if (r.status != service::JobStatus::kOk) exit_code = 1;
    }

    if (out_path.empty()) {
      std::printf("%s\n", w.str().c_str());
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "detserve: cannot write %s\n", out_path.c_str());
        return 1;
      }
      out << w.str() << "\n";
      for (const service::JobResult& r : results) {
        std::printf("%-24s %-14s exit=%d%s\n", r.name.c_str(), service::job_status_name(r.status),
                    r.exit_code, r.cache_hit ? "  (cache hit)" : "");
      }
      std::printf("report written to %s\n", out_path.c_str());
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detserve: %s\n", e.what());
    return 1;
  }
}
