file(REMOVE_RECURSE
  "CMakeFiles/detlockc.dir/detlockc.cpp.o"
  "CMakeFiles/detlockc.dir/detlockc.cpp.o.d"
  "detlockc"
  "detlockc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlockc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
