# Empty dependencies file for detlockc.
# This may be replaced when dependencies are built.
