file(REMOVE_RECURSE
  "CMakeFiles/detlock_sched.dir/detlock_sched.cpp.o"
  "CMakeFiles/detlock_sched.dir/detlock_sched.cpp.o.d"
  "detlock_sched"
  "detlock_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
