# Empty dependencies file for detlock_sched.
# This may be replaced when dependencies are built.
