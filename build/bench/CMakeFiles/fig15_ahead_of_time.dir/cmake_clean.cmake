file(REMOVE_RECURSE
  "CMakeFiles/fig15_ahead_of_time.dir/fig15_ahead_of_time.cpp.o"
  "CMakeFiles/fig15_ahead_of_time.dir/fig15_ahead_of_time.cpp.o.d"
  "fig15_ahead_of_time"
  "fig15_ahead_of_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ahead_of_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
