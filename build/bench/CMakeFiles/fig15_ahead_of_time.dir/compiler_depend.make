# Empty compiler generated dependencies file for fig15_ahead_of_time.
# This may be replaced when dependencies are built.
