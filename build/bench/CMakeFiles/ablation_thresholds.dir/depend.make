# Empty dependencies file for ablation_thresholds.
# This may be replaced when dependencies are built.
