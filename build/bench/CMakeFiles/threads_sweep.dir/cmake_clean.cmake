file(REMOVE_RECURSE
  "CMakeFiles/threads_sweep.dir/threads_sweep.cpp.o"
  "CMakeFiles/threads_sweep.dir/threads_sweep.cpp.o.d"
  "threads_sweep"
  "threads_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
