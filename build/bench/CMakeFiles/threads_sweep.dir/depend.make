# Empty dependencies file for threads_sweep.
# This may be replaced when dependencies are built.
