# Empty compiler generated dependencies file for table2_kendo.
# This may be replaced when dependencies are built.
