file(REMOVE_RECURSE
  "CMakeFiles/table2_kendo.dir/table2_kendo.cpp.o"
  "CMakeFiles/table2_kendo.dir/table2_kendo.cpp.o.d"
  "table2_kendo"
  "table2_kendo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kendo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
