file(REMOVE_RECURSE
  "CMakeFiles/fig14_bars.dir/fig14_bars.cpp.o"
  "CMakeFiles/fig14_bars.dir/fig14_bars.cpp.o.d"
  "fig14_bars"
  "fig14_bars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
