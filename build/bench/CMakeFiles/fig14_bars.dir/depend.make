# Empty dependencies file for fig14_bars.
# This may be replaced when dependencies are built.
