file(REMOVE_RECURSE
  "CMakeFiles/table_sites.dir/table_sites.cpp.o"
  "CMakeFiles/table_sites.dir/table_sites.cpp.o.d"
  "table_sites"
  "table_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
