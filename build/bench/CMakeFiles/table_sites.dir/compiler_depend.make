# Empty compiler generated dependencies file for table_sites.
# This may be replaced when dependencies are built.
