file(REMOVE_RECURSE
  "CMakeFiles/probe_workloads.dir/probe_workloads.cpp.o"
  "CMakeFiles/probe_workloads.dir/probe_workloads.cpp.o.d"
  "probe_workloads"
  "probe_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
