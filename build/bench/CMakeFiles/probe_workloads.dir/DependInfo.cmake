
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/probe_workloads.cpp" "bench/CMakeFiles/probe_workloads.dir/probe_workloads.cpp.o" "gcc" "bench/CMakeFiles/probe_workloads.dir/probe_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/detlock_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/detlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/detlock_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pass/CMakeFiles/detlock_pass.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/detlock_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/detlock_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/racedetect/CMakeFiles/detlock_racedetect.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/detlock_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
