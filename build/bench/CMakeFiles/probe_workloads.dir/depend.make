# Empty dependencies file for probe_workloads.
# This may be replaced when dependencies are built.
