file(REMOVE_RECURSE
  "CMakeFiles/table1_overheads.dir/table1_overheads.cpp.o"
  "CMakeFiles/table1_overheads.dir/table1_overheads.cpp.o.d"
  "table1_overheads"
  "table1_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
