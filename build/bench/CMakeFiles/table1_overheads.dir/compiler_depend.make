# Empty compiler generated dependencies file for table1_overheads.
# This may be replaced when dependencies are built.
