# Empty dependencies file for micro_pass.
# This may be replaced when dependencies are built.
