file(REMOVE_RECURSE
  "CMakeFiles/micro_pass.dir/micro_pass.cpp.o"
  "CMakeFiles/micro_pass.dir/micro_pass.cpp.o.d"
  "micro_pass"
  "micro_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
