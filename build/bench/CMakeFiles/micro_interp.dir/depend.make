# Empty dependencies file for micro_interp.
# This may be replaced when dependencies are built.
