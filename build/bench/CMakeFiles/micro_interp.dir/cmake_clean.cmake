file(REMOVE_RECURSE
  "CMakeFiles/micro_interp.dir/micro_interp.cpp.o"
  "CMakeFiles/micro_interp.dir/micro_interp.cpp.o.d"
  "micro_interp"
  "micro_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
