# Empty dependencies file for detlock_racedetect_tests.
# This may be replaced when dependencies are built.
