file(REMOVE_RECURSE
  "CMakeFiles/detlock_racedetect_tests.dir/racedetect/lockset_test.cpp.o"
  "CMakeFiles/detlock_racedetect_tests.dir/racedetect/lockset_test.cpp.o.d"
  "detlock_racedetect_tests"
  "detlock_racedetect_tests.pdb"
  "detlock_racedetect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_racedetect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
