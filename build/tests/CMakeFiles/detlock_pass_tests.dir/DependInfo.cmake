
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pass/block_split_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/block_split_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/block_split_test.cpp.o.d"
  "/root/repo/tests/pass/costs_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/costs_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/costs_test.cpp.o.d"
  "/root/repo/tests/pass/estimates_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/estimates_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/estimates_test.cpp.o.d"
  "/root/repo/tests/pass/example_walkthrough_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/example_walkthrough_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/example_walkthrough_test.cpp.o.d"
  "/root/repo/tests/pass/materialize_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/materialize_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/materialize_test.cpp.o.d"
  "/root/repo/tests/pass/opt1_function_clocking_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/opt1_function_clocking_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/opt1_function_clocking_test.cpp.o.d"
  "/root/repo/tests/pass/opt2_conditional_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/opt2_conditional_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/opt2_conditional_test.cpp.o.d"
  "/root/repo/tests/pass/opt3_averaging_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/opt3_averaging_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/opt3_averaging_test.cpp.o.d"
  "/root/repo/tests/pass/opt4_loops_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/opt4_loops_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/opt4_loops_test.cpp.o.d"
  "/root/repo/tests/pass/pipeline_property_test.cpp" "tests/CMakeFiles/detlock_pass_tests.dir/pass/pipeline_property_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_pass_tests.dir/pass/pipeline_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/detlock_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/detlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/detlock_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pass/CMakeFiles/detlock_pass.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/detlock_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/detlock_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/racedetect/CMakeFiles/detlock_racedetect.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/detlock_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
