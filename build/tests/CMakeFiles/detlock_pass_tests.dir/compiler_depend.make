# Empty compiler generated dependencies file for detlock_pass_tests.
# This may be replaced when dependencies are built.
