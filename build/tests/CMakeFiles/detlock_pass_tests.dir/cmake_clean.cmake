file(REMOVE_RECURSE
  "CMakeFiles/detlock_pass_tests.dir/pass/block_split_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/block_split_test.cpp.o.d"
  "CMakeFiles/detlock_pass_tests.dir/pass/costs_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/costs_test.cpp.o.d"
  "CMakeFiles/detlock_pass_tests.dir/pass/estimates_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/estimates_test.cpp.o.d"
  "CMakeFiles/detlock_pass_tests.dir/pass/example_walkthrough_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/example_walkthrough_test.cpp.o.d"
  "CMakeFiles/detlock_pass_tests.dir/pass/materialize_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/materialize_test.cpp.o.d"
  "CMakeFiles/detlock_pass_tests.dir/pass/opt1_function_clocking_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/opt1_function_clocking_test.cpp.o.d"
  "CMakeFiles/detlock_pass_tests.dir/pass/opt2_conditional_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/opt2_conditional_test.cpp.o.d"
  "CMakeFiles/detlock_pass_tests.dir/pass/opt3_averaging_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/opt3_averaging_test.cpp.o.d"
  "CMakeFiles/detlock_pass_tests.dir/pass/opt4_loops_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/opt4_loops_test.cpp.o.d"
  "CMakeFiles/detlock_pass_tests.dir/pass/pipeline_property_test.cpp.o"
  "CMakeFiles/detlock_pass_tests.dir/pass/pipeline_property_test.cpp.o.d"
  "detlock_pass_tests"
  "detlock_pass_tests.pdb"
  "detlock_pass_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_pass_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
