# Empty dependencies file for detlock_ir_tests.
# This may be replaced when dependencies are built.
