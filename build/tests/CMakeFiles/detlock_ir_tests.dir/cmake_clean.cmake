file(REMOVE_RECURSE
  "CMakeFiles/detlock_ir_tests.dir/ir/builder_test.cpp.o"
  "CMakeFiles/detlock_ir_tests.dir/ir/builder_test.cpp.o.d"
  "CMakeFiles/detlock_ir_tests.dir/ir/cost_model_test.cpp.o"
  "CMakeFiles/detlock_ir_tests.dir/ir/cost_model_test.cpp.o.d"
  "CMakeFiles/detlock_ir_tests.dir/ir/parser_robustness_test.cpp.o"
  "CMakeFiles/detlock_ir_tests.dir/ir/parser_robustness_test.cpp.o.d"
  "CMakeFiles/detlock_ir_tests.dir/ir/parser_test.cpp.o"
  "CMakeFiles/detlock_ir_tests.dir/ir/parser_test.cpp.o.d"
  "CMakeFiles/detlock_ir_tests.dir/ir/printer_roundtrip_test.cpp.o"
  "CMakeFiles/detlock_ir_tests.dir/ir/printer_roundtrip_test.cpp.o.d"
  "CMakeFiles/detlock_ir_tests.dir/ir/verifier_test.cpp.o"
  "CMakeFiles/detlock_ir_tests.dir/ir/verifier_test.cpp.o.d"
  "detlock_ir_tests"
  "detlock_ir_tests.pdb"
  "detlock_ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
