file(REMOVE_RECURSE
  "CMakeFiles/detlock_analysis_tests.dir/analysis/call_graph_test.cpp.o"
  "CMakeFiles/detlock_analysis_tests.dir/analysis/call_graph_test.cpp.o.d"
  "CMakeFiles/detlock_analysis_tests.dir/analysis/cfg_dom_test.cpp.o"
  "CMakeFiles/detlock_analysis_tests.dir/analysis/cfg_dom_test.cpp.o.d"
  "CMakeFiles/detlock_analysis_tests.dir/analysis/loops_test.cpp.o"
  "CMakeFiles/detlock_analysis_tests.dir/analysis/loops_test.cpp.o.d"
  "CMakeFiles/detlock_analysis_tests.dir/analysis/paths_test.cpp.o"
  "CMakeFiles/detlock_analysis_tests.dir/analysis/paths_test.cpp.o.d"
  "detlock_analysis_tests"
  "detlock_analysis_tests.pdb"
  "detlock_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
