# Empty compiler generated dependencies file for detlock_analysis_tests.
# This may be replaced when dependencies are built.
