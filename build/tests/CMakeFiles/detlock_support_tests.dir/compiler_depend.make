# Empty compiler generated dependencies file for detlock_support_tests.
# This may be replaced when dependencies are built.
