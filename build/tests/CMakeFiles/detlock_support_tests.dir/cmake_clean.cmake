file(REMOVE_RECURSE
  "CMakeFiles/detlock_support_tests.dir/support/hash_prng_table_test.cpp.o"
  "CMakeFiles/detlock_support_tests.dir/support/hash_prng_table_test.cpp.o.d"
  "CMakeFiles/detlock_support_tests.dir/support/spinwait_cacheline_test.cpp.o"
  "CMakeFiles/detlock_support_tests.dir/support/spinwait_cacheline_test.cpp.o.d"
  "CMakeFiles/detlock_support_tests.dir/support/stats_test.cpp.o"
  "CMakeFiles/detlock_support_tests.dir/support/stats_test.cpp.o.d"
  "CMakeFiles/detlock_support_tests.dir/support/strings_test.cpp.o"
  "CMakeFiles/detlock_support_tests.dir/support/strings_test.cpp.o.d"
  "detlock_support_tests"
  "detlock_support_tests.pdb"
  "detlock_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
