file(REMOVE_RECURSE
  "CMakeFiles/detlock_interp_tests.dir/interp/engine_condvar_test.cpp.o"
  "CMakeFiles/detlock_interp_tests.dir/interp/engine_condvar_test.cpp.o.d"
  "CMakeFiles/detlock_interp_tests.dir/interp/engine_record_test.cpp.o"
  "CMakeFiles/detlock_interp_tests.dir/interp/engine_record_test.cpp.o.d"
  "CMakeFiles/detlock_interp_tests.dir/interp/engine_test.cpp.o"
  "CMakeFiles/detlock_interp_tests.dir/interp/engine_test.cpp.o.d"
  "CMakeFiles/detlock_interp_tests.dir/interp/engine_threads_test.cpp.o"
  "CMakeFiles/detlock_interp_tests.dir/interp/engine_threads_test.cpp.o.d"
  "CMakeFiles/detlock_interp_tests.dir/interp/opcode_semantics_test.cpp.o"
  "CMakeFiles/detlock_interp_tests.dir/interp/opcode_semantics_test.cpp.o.d"
  "detlock_interp_tests"
  "detlock_interp_tests.pdb"
  "detlock_interp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_interp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
