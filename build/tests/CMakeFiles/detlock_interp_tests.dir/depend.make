# Empty dependencies file for detlock_interp_tests.
# This may be replaced when dependencies are built.
