# Empty compiler generated dependencies file for detlock_runtime_tests.
# This may be replaced when dependencies are built.
