file(REMOVE_RECURSE
  "CMakeFiles/detlock_runtime_tests.dir/runtime/clock_table_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/clock_table_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_allocator_property_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_allocator_property_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_allocator_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_allocator_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_barrier_join_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_barrier_join_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_condvar_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_condvar_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_mutex_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_mutex_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_stress_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/det_stress_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/native_api_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/native_api_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/nondet_trace_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/nondet_trace_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/pthread_shim_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/pthread_shim_test.cpp.o.d"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/schedule_test.cpp.o"
  "CMakeFiles/detlock_runtime_tests.dir/runtime/schedule_test.cpp.o.d"
  "detlock_runtime_tests"
  "detlock_runtime_tests.pdb"
  "detlock_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
