
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/clock_table_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/clock_table_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/clock_table_test.cpp.o.d"
  "/root/repo/tests/runtime/det_allocator_property_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_allocator_property_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_allocator_property_test.cpp.o.d"
  "/root/repo/tests/runtime/det_allocator_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_allocator_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_allocator_test.cpp.o.d"
  "/root/repo/tests/runtime/det_barrier_join_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_barrier_join_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_barrier_join_test.cpp.o.d"
  "/root/repo/tests/runtime/det_condvar_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_condvar_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_condvar_test.cpp.o.d"
  "/root/repo/tests/runtime/det_mutex_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_mutex_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_mutex_test.cpp.o.d"
  "/root/repo/tests/runtime/det_stress_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_stress_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/det_stress_test.cpp.o.d"
  "/root/repo/tests/runtime/native_api_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/native_api_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/native_api_test.cpp.o.d"
  "/root/repo/tests/runtime/nondet_trace_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/nondet_trace_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/nondet_trace_test.cpp.o.d"
  "/root/repo/tests/runtime/pthread_shim_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/pthread_shim_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/pthread_shim_test.cpp.o.d"
  "/root/repo/tests/runtime/schedule_test.cpp" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/detlock_runtime_tests.dir/runtime/schedule_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/detlock_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/detlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/detlock_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pass/CMakeFiles/detlock_pass.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/detlock_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/detlock_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/racedetect/CMakeFiles/detlock_racedetect.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/detlock_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
