# Empty dependencies file for detlock_integration_tests.
# This may be replaced when dependencies are built.
