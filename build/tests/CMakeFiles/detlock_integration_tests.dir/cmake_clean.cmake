file(REMOVE_RECURSE
  "CMakeFiles/detlock_integration_tests.dir/integration/replica_test.cpp.o"
  "CMakeFiles/detlock_integration_tests.dir/integration/replica_test.cpp.o.d"
  "CMakeFiles/detlock_integration_tests.dir/integration/smoke_test.cpp.o"
  "CMakeFiles/detlock_integration_tests.dir/integration/smoke_test.cpp.o.d"
  "CMakeFiles/detlock_integration_tests.dir/integration/taskfarm_cv_test.cpp.o"
  "CMakeFiles/detlock_integration_tests.dir/integration/taskfarm_cv_test.cpp.o.d"
  "CMakeFiles/detlock_integration_tests.dir/integration/workload_determinism_test.cpp.o"
  "CMakeFiles/detlock_integration_tests.dir/integration/workload_determinism_test.cpp.o.d"
  "CMakeFiles/detlock_integration_tests.dir/integration/workload_structure_test.cpp.o"
  "CMakeFiles/detlock_integration_tests.dir/integration/workload_structure_test.cpp.o.d"
  "detlock_integration_tests"
  "detlock_integration_tests.pdb"
  "detlock_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
