file(REMOVE_RECURSE
  "libdetlock_analysis.a"
)
