
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/call_graph.cpp" "src/analysis/CMakeFiles/detlock_analysis.dir/call_graph.cpp.o" "gcc" "src/analysis/CMakeFiles/detlock_analysis.dir/call_graph.cpp.o.d"
  "/root/repo/src/analysis/cfg.cpp" "src/analysis/CMakeFiles/detlock_analysis.dir/cfg.cpp.o" "gcc" "src/analysis/CMakeFiles/detlock_analysis.dir/cfg.cpp.o.d"
  "/root/repo/src/analysis/dominators.cpp" "src/analysis/CMakeFiles/detlock_analysis.dir/dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/detlock_analysis.dir/dominators.cpp.o.d"
  "/root/repo/src/analysis/loops.cpp" "src/analysis/CMakeFiles/detlock_analysis.dir/loops.cpp.o" "gcc" "src/analysis/CMakeFiles/detlock_analysis.dir/loops.cpp.o.d"
  "/root/repo/src/analysis/paths.cpp" "src/analysis/CMakeFiles/detlock_analysis.dir/paths.cpp.o" "gcc" "src/analysis/CMakeFiles/detlock_analysis.dir/paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/detlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/detlock_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
