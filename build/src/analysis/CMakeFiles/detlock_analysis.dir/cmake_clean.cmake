file(REMOVE_RECURSE
  "CMakeFiles/detlock_analysis.dir/call_graph.cpp.o"
  "CMakeFiles/detlock_analysis.dir/call_graph.cpp.o.d"
  "CMakeFiles/detlock_analysis.dir/cfg.cpp.o"
  "CMakeFiles/detlock_analysis.dir/cfg.cpp.o.d"
  "CMakeFiles/detlock_analysis.dir/dominators.cpp.o"
  "CMakeFiles/detlock_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/detlock_analysis.dir/loops.cpp.o"
  "CMakeFiles/detlock_analysis.dir/loops.cpp.o.d"
  "CMakeFiles/detlock_analysis.dir/paths.cpp.o"
  "CMakeFiles/detlock_analysis.dir/paths.cpp.o.d"
  "libdetlock_analysis.a"
  "libdetlock_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
