# Empty compiler generated dependencies file for detlock_analysis.
# This may be replaced when dependencies are built.
