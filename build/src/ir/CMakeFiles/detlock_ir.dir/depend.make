# Empty dependencies file for detlock_ir.
# This may be replaced when dependencies are built.
