file(REMOVE_RECURSE
  "libdetlock_ir.a"
)
