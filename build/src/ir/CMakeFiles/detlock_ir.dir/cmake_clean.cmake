file(REMOVE_RECURSE
  "CMakeFiles/detlock_ir.dir/builder.cpp.o"
  "CMakeFiles/detlock_ir.dir/builder.cpp.o.d"
  "CMakeFiles/detlock_ir.dir/opcode.cpp.o"
  "CMakeFiles/detlock_ir.dir/opcode.cpp.o.d"
  "CMakeFiles/detlock_ir.dir/parser.cpp.o"
  "CMakeFiles/detlock_ir.dir/parser.cpp.o.d"
  "CMakeFiles/detlock_ir.dir/printer.cpp.o"
  "CMakeFiles/detlock_ir.dir/printer.cpp.o.d"
  "CMakeFiles/detlock_ir.dir/verifier.cpp.o"
  "CMakeFiles/detlock_ir.dir/verifier.cpp.o.d"
  "libdetlock_ir.a"
  "libdetlock_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
