file(REMOVE_RECURSE
  "CMakeFiles/detlock_support.dir/stats.cpp.o"
  "CMakeFiles/detlock_support.dir/stats.cpp.o.d"
  "CMakeFiles/detlock_support.dir/strings.cpp.o"
  "CMakeFiles/detlock_support.dir/strings.cpp.o.d"
  "CMakeFiles/detlock_support.dir/table.cpp.o"
  "CMakeFiles/detlock_support.dir/table.cpp.o.d"
  "libdetlock_support.a"
  "libdetlock_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
