file(REMOVE_RECURSE
  "libdetlock_support.a"
)
