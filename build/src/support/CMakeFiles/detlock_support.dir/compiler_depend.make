# Empty compiler generated dependencies file for detlock_support.
# This may be replaced when dependencies are built.
