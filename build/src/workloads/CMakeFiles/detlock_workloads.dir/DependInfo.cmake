
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/common.cpp" "src/workloads/CMakeFiles/detlock_workloads.dir/common.cpp.o" "gcc" "src/workloads/CMakeFiles/detlock_workloads.dir/common.cpp.o.d"
  "/root/repo/src/workloads/harness.cpp" "src/workloads/CMakeFiles/detlock_workloads.dir/harness.cpp.o" "gcc" "src/workloads/CMakeFiles/detlock_workloads.dir/harness.cpp.o.d"
  "/root/repo/src/workloads/ocean.cpp" "src/workloads/CMakeFiles/detlock_workloads.dir/ocean.cpp.o" "gcc" "src/workloads/CMakeFiles/detlock_workloads.dir/ocean.cpp.o.d"
  "/root/repo/src/workloads/radiosity.cpp" "src/workloads/CMakeFiles/detlock_workloads.dir/radiosity.cpp.o" "gcc" "src/workloads/CMakeFiles/detlock_workloads.dir/radiosity.cpp.o.d"
  "/root/repo/src/workloads/raytrace.cpp" "src/workloads/CMakeFiles/detlock_workloads.dir/raytrace.cpp.o" "gcc" "src/workloads/CMakeFiles/detlock_workloads.dir/raytrace.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/detlock_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/detlock_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/taskfarm_cv.cpp" "src/workloads/CMakeFiles/detlock_workloads.dir/taskfarm_cv.cpp.o" "gcc" "src/workloads/CMakeFiles/detlock_workloads.dir/taskfarm_cv.cpp.o.d"
  "/root/repo/src/workloads/volrend.cpp" "src/workloads/CMakeFiles/detlock_workloads.dir/volrend.cpp.o" "gcc" "src/workloads/CMakeFiles/detlock_workloads.dir/volrend.cpp.o.d"
  "/root/repo/src/workloads/water_nsq.cpp" "src/workloads/CMakeFiles/detlock_workloads.dir/water_nsq.cpp.o" "gcc" "src/workloads/CMakeFiles/detlock_workloads.dir/water_nsq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/detlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/detlock_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/pass/CMakeFiles/detlock_pass.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/detlock_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/detlock_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/detlock_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
