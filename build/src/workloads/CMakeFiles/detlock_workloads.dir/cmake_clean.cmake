file(REMOVE_RECURSE
  "CMakeFiles/detlock_workloads.dir/common.cpp.o"
  "CMakeFiles/detlock_workloads.dir/common.cpp.o.d"
  "CMakeFiles/detlock_workloads.dir/harness.cpp.o"
  "CMakeFiles/detlock_workloads.dir/harness.cpp.o.d"
  "CMakeFiles/detlock_workloads.dir/ocean.cpp.o"
  "CMakeFiles/detlock_workloads.dir/ocean.cpp.o.d"
  "CMakeFiles/detlock_workloads.dir/radiosity.cpp.o"
  "CMakeFiles/detlock_workloads.dir/radiosity.cpp.o.d"
  "CMakeFiles/detlock_workloads.dir/raytrace.cpp.o"
  "CMakeFiles/detlock_workloads.dir/raytrace.cpp.o.d"
  "CMakeFiles/detlock_workloads.dir/registry.cpp.o"
  "CMakeFiles/detlock_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/detlock_workloads.dir/taskfarm_cv.cpp.o"
  "CMakeFiles/detlock_workloads.dir/taskfarm_cv.cpp.o.d"
  "CMakeFiles/detlock_workloads.dir/volrend.cpp.o"
  "CMakeFiles/detlock_workloads.dir/volrend.cpp.o.d"
  "CMakeFiles/detlock_workloads.dir/water_nsq.cpp.o"
  "CMakeFiles/detlock_workloads.dir/water_nsq.cpp.o.d"
  "libdetlock_workloads.a"
  "libdetlock_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
