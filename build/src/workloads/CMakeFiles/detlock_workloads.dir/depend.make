# Empty dependencies file for detlock_workloads.
# This may be replaced when dependencies are built.
