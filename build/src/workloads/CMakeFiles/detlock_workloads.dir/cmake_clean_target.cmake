file(REMOVE_RECURSE
  "libdetlock_workloads.a"
)
