# Empty dependencies file for detlock_runtime.
# This may be replaced when dependencies are built.
