file(REMOVE_RECURSE
  "libdetlock_runtime.a"
)
