file(REMOVE_RECURSE
  "CMakeFiles/detlock_runtime.dir/det_allocator.cpp.o"
  "CMakeFiles/detlock_runtime.dir/det_allocator.cpp.o.d"
  "CMakeFiles/detlock_runtime.dir/det_backend.cpp.o"
  "CMakeFiles/detlock_runtime.dir/det_backend.cpp.o.d"
  "CMakeFiles/detlock_runtime.dir/native_api.cpp.o"
  "CMakeFiles/detlock_runtime.dir/native_api.cpp.o.d"
  "CMakeFiles/detlock_runtime.dir/nondet_backend.cpp.o"
  "CMakeFiles/detlock_runtime.dir/nondet_backend.cpp.o.d"
  "CMakeFiles/detlock_runtime.dir/pthread_shim.cpp.o"
  "CMakeFiles/detlock_runtime.dir/pthread_shim.cpp.o.d"
  "CMakeFiles/detlock_runtime.dir/schedule.cpp.o"
  "CMakeFiles/detlock_runtime.dir/schedule.cpp.o.d"
  "CMakeFiles/detlock_runtime.dir/shared_memory.cpp.o"
  "CMakeFiles/detlock_runtime.dir/shared_memory.cpp.o.d"
  "libdetlock_runtime.a"
  "libdetlock_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
