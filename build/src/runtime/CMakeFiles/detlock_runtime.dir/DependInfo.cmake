
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/det_allocator.cpp" "src/runtime/CMakeFiles/detlock_runtime.dir/det_allocator.cpp.o" "gcc" "src/runtime/CMakeFiles/detlock_runtime.dir/det_allocator.cpp.o.d"
  "/root/repo/src/runtime/det_backend.cpp" "src/runtime/CMakeFiles/detlock_runtime.dir/det_backend.cpp.o" "gcc" "src/runtime/CMakeFiles/detlock_runtime.dir/det_backend.cpp.o.d"
  "/root/repo/src/runtime/native_api.cpp" "src/runtime/CMakeFiles/detlock_runtime.dir/native_api.cpp.o" "gcc" "src/runtime/CMakeFiles/detlock_runtime.dir/native_api.cpp.o.d"
  "/root/repo/src/runtime/nondet_backend.cpp" "src/runtime/CMakeFiles/detlock_runtime.dir/nondet_backend.cpp.o" "gcc" "src/runtime/CMakeFiles/detlock_runtime.dir/nondet_backend.cpp.o.d"
  "/root/repo/src/runtime/pthread_shim.cpp" "src/runtime/CMakeFiles/detlock_runtime.dir/pthread_shim.cpp.o" "gcc" "src/runtime/CMakeFiles/detlock_runtime.dir/pthread_shim.cpp.o.d"
  "/root/repo/src/runtime/schedule.cpp" "src/runtime/CMakeFiles/detlock_runtime.dir/schedule.cpp.o" "gcc" "src/runtime/CMakeFiles/detlock_runtime.dir/schedule.cpp.o.d"
  "/root/repo/src/runtime/shared_memory.cpp" "src/runtime/CMakeFiles/detlock_runtime.dir/shared_memory.cpp.o" "gcc" "src/runtime/CMakeFiles/detlock_runtime.dir/shared_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/detlock_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
