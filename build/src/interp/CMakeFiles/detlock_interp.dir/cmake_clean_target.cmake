file(REMOVE_RECURSE
  "libdetlock_interp.a"
)
