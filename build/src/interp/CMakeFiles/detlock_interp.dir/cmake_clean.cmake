file(REMOVE_RECURSE
  "CMakeFiles/detlock_interp.dir/engine.cpp.o"
  "CMakeFiles/detlock_interp.dir/engine.cpp.o.d"
  "CMakeFiles/detlock_interp.dir/externs.cpp.o"
  "CMakeFiles/detlock_interp.dir/externs.cpp.o.d"
  "libdetlock_interp.a"
  "libdetlock_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
