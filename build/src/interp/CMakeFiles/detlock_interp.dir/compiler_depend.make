# Empty compiler generated dependencies file for detlock_interp.
# This may be replaced when dependencies are built.
