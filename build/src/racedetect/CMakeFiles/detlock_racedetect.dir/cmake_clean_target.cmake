file(REMOVE_RECURSE
  "libdetlock_racedetect.a"
)
