file(REMOVE_RECURSE
  "CMakeFiles/detlock_racedetect.dir/lockset.cpp.o"
  "CMakeFiles/detlock_racedetect.dir/lockset.cpp.o.d"
  "libdetlock_racedetect.a"
  "libdetlock_racedetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_racedetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
