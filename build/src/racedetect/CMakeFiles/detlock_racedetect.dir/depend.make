# Empty dependencies file for detlock_racedetect.
# This may be replaced when dependencies are built.
