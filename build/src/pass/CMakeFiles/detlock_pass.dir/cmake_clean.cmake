file(REMOVE_RECURSE
  "CMakeFiles/detlock_pass.dir/block_split.cpp.o"
  "CMakeFiles/detlock_pass.dir/block_split.cpp.o.d"
  "CMakeFiles/detlock_pass.dir/conservation.cpp.o"
  "CMakeFiles/detlock_pass.dir/conservation.cpp.o.d"
  "CMakeFiles/detlock_pass.dir/costs.cpp.o"
  "CMakeFiles/detlock_pass.dir/costs.cpp.o.d"
  "CMakeFiles/detlock_pass.dir/estimates.cpp.o"
  "CMakeFiles/detlock_pass.dir/estimates.cpp.o.d"
  "CMakeFiles/detlock_pass.dir/function_clocking.cpp.o"
  "CMakeFiles/detlock_pass.dir/function_clocking.cpp.o.d"
  "CMakeFiles/detlock_pass.dir/materialize.cpp.o"
  "CMakeFiles/detlock_pass.dir/materialize.cpp.o.d"
  "CMakeFiles/detlock_pass.dir/opt2_conditional.cpp.o"
  "CMakeFiles/detlock_pass.dir/opt2_conditional.cpp.o.d"
  "CMakeFiles/detlock_pass.dir/opt3_averaging.cpp.o"
  "CMakeFiles/detlock_pass.dir/opt3_averaging.cpp.o.d"
  "CMakeFiles/detlock_pass.dir/opt4_loops.cpp.o"
  "CMakeFiles/detlock_pass.dir/opt4_loops.cpp.o.d"
  "CMakeFiles/detlock_pass.dir/pipeline.cpp.o"
  "CMakeFiles/detlock_pass.dir/pipeline.cpp.o.d"
  "libdetlock_pass.a"
  "libdetlock_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detlock_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
