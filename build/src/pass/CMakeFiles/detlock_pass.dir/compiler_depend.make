# Empty compiler generated dependencies file for detlock_pass.
# This may be replaced when dependencies are built.
