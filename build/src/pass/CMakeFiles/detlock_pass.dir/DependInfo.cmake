
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pass/block_split.cpp" "src/pass/CMakeFiles/detlock_pass.dir/block_split.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/block_split.cpp.o.d"
  "/root/repo/src/pass/conservation.cpp" "src/pass/CMakeFiles/detlock_pass.dir/conservation.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/conservation.cpp.o.d"
  "/root/repo/src/pass/costs.cpp" "src/pass/CMakeFiles/detlock_pass.dir/costs.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/costs.cpp.o.d"
  "/root/repo/src/pass/estimates.cpp" "src/pass/CMakeFiles/detlock_pass.dir/estimates.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/estimates.cpp.o.d"
  "/root/repo/src/pass/function_clocking.cpp" "src/pass/CMakeFiles/detlock_pass.dir/function_clocking.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/function_clocking.cpp.o.d"
  "/root/repo/src/pass/materialize.cpp" "src/pass/CMakeFiles/detlock_pass.dir/materialize.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/materialize.cpp.o.d"
  "/root/repo/src/pass/opt2_conditional.cpp" "src/pass/CMakeFiles/detlock_pass.dir/opt2_conditional.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/opt2_conditional.cpp.o.d"
  "/root/repo/src/pass/opt3_averaging.cpp" "src/pass/CMakeFiles/detlock_pass.dir/opt3_averaging.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/opt3_averaging.cpp.o.d"
  "/root/repo/src/pass/opt4_loops.cpp" "src/pass/CMakeFiles/detlock_pass.dir/opt4_loops.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/opt4_loops.cpp.o.d"
  "/root/repo/src/pass/pipeline.cpp" "src/pass/CMakeFiles/detlock_pass.dir/pipeline.cpp.o" "gcc" "src/pass/CMakeFiles/detlock_pass.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/detlock_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/detlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/detlock_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
