file(REMOVE_RECURSE
  "libdetlock_pass.a"
)
