file(REMOVE_RECURSE
  "CMakeFiles/pthread_port.dir/pthread_port.cpp.o"
  "CMakeFiles/pthread_port.dir/pthread_port.cpp.o.d"
  "pthread_port"
  "pthread_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pthread_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
