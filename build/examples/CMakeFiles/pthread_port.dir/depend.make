# Empty dependencies file for pthread_port.
# This may be replaced when dependencies are built.
