file(REMOVE_RECURSE
  "CMakeFiles/heisenbug_replay.dir/heisenbug_replay.cpp.o"
  "CMakeFiles/heisenbug_replay.dir/heisenbug_replay.cpp.o.d"
  "heisenbug_replay"
  "heisenbug_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heisenbug_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
