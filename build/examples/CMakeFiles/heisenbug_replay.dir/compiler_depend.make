# Empty compiler generated dependencies file for heisenbug_replay.
# This may be replaced when dependencies are built.
