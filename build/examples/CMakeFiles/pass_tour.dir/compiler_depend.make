# Empty compiler generated dependencies file for pass_tour.
# This may be replaced when dependencies are built.
