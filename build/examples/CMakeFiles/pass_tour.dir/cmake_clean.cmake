file(REMOVE_RECURSE
  "CMakeFiles/pass_tour.dir/pass_tour.cpp.o"
  "CMakeFiles/pass_tour.dir/pass_tour.cpp.o.d"
  "pass_tour"
  "pass_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pass_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
