file(REMOVE_RECURSE
  "CMakeFiles/bank_native.dir/bank_native.cpp.o"
  "CMakeFiles/bank_native.dir/bank_native.cpp.o.d"
  "bank_native"
  "bank_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
