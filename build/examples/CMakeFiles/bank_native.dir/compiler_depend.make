# Empty compiler generated dependencies file for bank_native.
# This may be replaced when dependencies are built.
